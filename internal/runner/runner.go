// Package runner executes registered experiments as shardable jobs over a
// persistent worker pool, turning the experiment suite from a sequential
// batch script into a concurrent engine with machine-readable results.
//
// Two properties drive the design:
//
//   - Markdown reports are byte-identical to a sequential run. Each job
//     streams its experiment's markdown into a private buffer; the main
//     goroutine flushes the buffers in experiment order, each as soon as
//     its job finishes. With one worker this degenerates to exactly the
//     sequential pipeline; with many, only wall-clock changes.
//   - Every run also produces a structured JSON result envelope — one
//     record per experiment (status, wall time, exact-solver work, solve
//     and build cache traffic, instance-job count) plus run-level totals —
//     so CI and tooling consume results without parsing markdown.
//     cmd/benchjson validates the envelope; .github/workflows/ci.yml
//     archives it.
//
// Sharding happens at two levels over one experiments.Scheduler pool:
// each experiment is a pool job, and the sweep loops inside an experiment
// submit their per-instance work (build + simulate + solve of one sweep
// point) back into the same pool via Ctx.Go/Ctx.Gather. Nested gathering
// cannot deadlock the pool: a gatherer claims its still-queued jobs and
// runs them inline rather than blocking on them (see
// internal/experiments/context.go). The pool size is therefore NOT
// clamped to the experiment count — extra workers drain instance jobs.
//
// Experiments run concurrently, so their solver work meets in the shared
// content-addressed solve cache (internal/mis/cache) and their graph
// constructions in the shared build cache (internal/lbgraph): a graph
// solved or built by one job is a cache hit for every other job that
// needs the same one. Each job nevertheless sees only its own traffic: it
// runs under private cache.Session / lbgraph.CacheSession views, which is
// what makes the per-experiment numbers in the envelope exact at any pool
// size (they used to be diffs of process-global counters, approximate
// whenever jobs overlapped).
package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"congestlb/internal/experiments"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
)

// Schema identifies the envelope format; bump when fields change meaning.
// v3: per-experiment instance_jobs (intra-experiment sharding) and
// lbgraph_hits/lbgraph_misses (build-cache attribution), run-level
// lbgraph_cache block, and Jobs is no longer clamped to the experiment
// count (extra workers run instance jobs).
const Schema = "congestlb/experiment-envelope/v3"

// Experiment statuses in the envelope.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Options configures a Run.
type Options struct {
	// Jobs is the worker-pool size; values < 1 select GOMAXPROCS. The
	// pool is shared between experiment-level and per-instance jobs, so
	// values above the experiment count still buy parallelism.
	Jobs int
	// SolverWorkers is the branch-and-bound worker count stamped onto
	// every exact solve of the run (0 = the solver's default, GOMAXPROCS).
	// The effective value is recorded in the envelope.
	SolverWorkers int
}

// ExperimentResult is one experiment's record in the JSON envelope.
type ExperimentResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	PaperRef string `json:"paper_ref"`
	// Status is StatusOK or StatusFailed.
	Status string `json:"status"`
	// Error carries the failure text when Status is StatusFailed.
	Error string `json:"error,omitempty"`
	// WallMS is the experiment's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// InstanceJobs counts the per-instance jobs the experiment submitted
	// to the shared pool via Ctx.Go — the intra-experiment sharding grain.
	InstanceJobs int64 `json:"instance_jobs"`
	// SolveSteps is the branch-and-bound work (solver steps) performed on
	// behalf of this experiment; CacheHits/CacheMisses are the solve-cache
	// lookups it triggered, and StepsSaved the solver work those hits
	// avoided. Each job runs under its own cache.Session, so all four are
	// exact at any Jobs count. With single-flight dedup, a solve two
	// overlapping experiments both need books its steps under the one that
	// ran it; the other records a hit and the StepsSaved.
	SolveSteps  int64  `json:"solve_steps"`
	StepsSaved  int64  `json:"steps_saved"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// LBGraphHits/LBGraphMisses are the experiment's lower-bound graph
	// build-cache lookups, attributed exactly through its private
	// lbgraph.CacheSession.
	LBGraphHits   uint64 `json:"lbgraph_hits"`
	LBGraphMisses uint64 `json:"lbgraph_misses"`
}

// Envelope is the structured result of one runner invocation.
type Envelope struct {
	Schema string `json:"schema"`
	// Jobs is the effective worker-pool size of the run; SolverWorkers the
	// effective per-solve branch-and-bound worker count.
	Jobs          int `json:"jobs"`
	SolverWorkers int `json:"solver_workers"`
	// WallMS is the whole run's wall-clock time; SequentialMS sums the
	// per-experiment wall times, so WallMS/SequentialMS exposes the
	// sharding win on multi-core runs.
	WallMS       float64 `json:"wall_ms"`
	SequentialMS float64 `json:"sequential_ms"`
	// OK and Failed count experiment statuses.
	OK     int `json:"ok"`
	Failed int `json:"failed"`
	// Cache reports the shared solve cache's traffic across the run: the
	// hit/miss/eviction/steps fields are counter deltas (this run only);
	// Entries is the cache's occupancy level at the end of the run, not a
	// delta.
	Cache cache.Stats `json:"cache"`
	// LBGraph reports the shared lower-bound-graph build cache's traffic
	// across the run, with the same delta/occupancy convention as Cache.
	LBGraph lbgraph.CacheStats `json:"lbgraph_cache"`
	// Experiments holds one record per experiment, in report order.
	Experiments []ExperimentResult `json:"experiments"`
}

// Run executes the given experiments over a worker pool and streams the
// combined markdown report to w (pass nil to discard). The report bytes
// are identical to a sequential experiments.RunAll over the same list,
// whatever the pool size. The returned error aggregates experiment
// failures exactly like experiments.RunAll; the envelope is valid (and
// complete) even when experiments fail.
func Run(exps []experiments.Experiment, opts Options, w io.Writer) (Envelope, error) {
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if w == nil {
		w = io.Discard
	}
	solverWorkers := opts.SolverWorkers
	if solverWorkers <= 0 {
		solverWorkers = mis.DefaultWorkers()
	}
	if solverWorkers <= 0 {
		solverWorkers = runtime.GOMAXPROCS(0)
	}

	env := Envelope{
		Schema:        Schema,
		Jobs:          jobs,
		SolverWorkers: solverWorkers,
		Experiments:   make([]ExperimentResult, len(exps)),
	}
	start := time.Now()
	cacheBefore := cache.Shared().Stats()
	buildBefore := lbgraph.SharedBuildCache().Stats()

	// One scheduler serves both levels: experiment jobs submitted here and
	// the per-instance jobs those experiments fan out through Ctx.Go.
	// Each job owns the buffer and result slot of its experiment index;
	// done[i] is closed when slot i is final. The flush loop below waits
	// on the slots in order, so output streams as soon as the next
	// experiment in report order has finished — not only at the end.
	sched := experiments.NewScheduler(jobs)
	type slot struct {
		buf  strings.Builder
		done chan struct{}
	}
	slots := make([]*slot, len(exps))
	for i := range slots {
		slots[i] = &slot{done: make(chan struct{})}
	}
	for i := range exps {
		sched.Submit(func() {
			runOne(exps[i], sched, &slots[i].buf, &env.Experiments[i], opts.SolverWorkers)
			close(slots[i].done)
		})
	}

	var writeErr error
	for i := range slots {
		<-slots[i].done
		if writeErr == nil {
			_, writeErr = io.WriteString(w, slots[i].buf.String())
		}
		slots[i].buf.Reset()
	}
	sched.Close()

	env.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	cacheAfter := cache.Shared().Stats()
	env.Cache = cache.Stats{
		Hits:          cacheAfter.Hits - cacheBefore.Hits,
		Misses:        cacheAfter.Misses - cacheBefore.Misses,
		Evictions:     cacheAfter.Evictions - cacheBefore.Evictions,
		Entries:       cacheAfter.Entries,
		StepsSolved:   cacheAfter.StepsSolved - cacheBefore.StepsSolved,
		StepsSaved:    cacheAfter.StepsSaved - cacheBefore.StepsSaved,
		DiskHits:      cacheAfter.DiskHits - cacheBefore.DiskHits,
		DiskMisses:    cacheAfter.DiskMisses - cacheBefore.DiskMisses,
		DiskWrites:    cacheAfter.DiskWrites - cacheBefore.DiskWrites,
		DiskEvictions: cacheAfter.DiskEvictions - cacheBefore.DiskEvictions,
	}
	buildAfter := lbgraph.SharedBuildCache().Stats()
	env.LBGraph = lbgraph.CacheStats{
		Hits:      buildAfter.Hits - buildBefore.Hits,
		Misses:    buildAfter.Misses - buildBefore.Misses,
		Evictions: buildAfter.Evictions - buildBefore.Evictions,
		Entries:   buildAfter.Entries,
	}

	var failures []string
	for _, r := range env.Experiments {
		env.SequentialMS += r.WallMS
		if r.Status == StatusFailed {
			env.Failed++
			failures = append(failures, fmt.Sprintf("%s: %s", r.ID, r.Error))
		} else {
			env.OK++
		}
	}
	// Joined, not prioritised: a report-writer error (disk full) must not
	// mask which experiments failed, and vice versa.
	var failErr error
	if len(failures) > 0 {
		failErr = fmt.Errorf("experiments failed:\n  %s", strings.Join(failures, "\n  "))
	}
	if writeErr != nil {
		return env, errors.Join(failErr, fmt.Errorf("runner: report write: %w", writeErr))
	}
	return env, failErr
}

// runOne executes a single experiment into its private buffer and fills
// its envelope record. The markdown framing replicates experiments.RunAll
// byte for byte. The private cache sessions make the solver/cache/build
// numbers exactly this experiment's, however many jobs run concurrently;
// the scheduler hands the experiment's Ctx.Go instance jobs to the shared
// pool.
func runOne(e experiments.Experiment, sched *experiments.Scheduler, buf *strings.Builder, res *ExperimentResult, solverWorkers int) {
	res.ID, res.Title, res.PaperRef = e.ID, e.Title, e.PaperRef
	fmt.Fprintf(buf, "## %s — %s\n\n*Reproduces: %s*\n\n", e.ID, e.Title, e.PaperRef)
	sess := cache.NewSession(nil, solverWorkers)
	ctx := experiments.NewCtx(buf, sess).WithScheduler(sched)
	start := time.Now()
	err := e.Run(ctx)
	// An experiment that errors between Go and Gather leaves instance
	// jobs queued or running. Drain them before snapshotting: their cache
	// traffic belongs to this experiment's record, and a leaked job must
	// not keep occupying a pool worker (or mutating this experiment's
	// sessions) into later experiments' windows. Their errors are
	// discarded — a sequential early-returning loop never ran them.
	_ = ctx.Gather()
	res.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	st := sess.Stats()
	res.SolveSteps = st.StepsSolved
	res.StepsSaved = st.StepsSaved
	res.CacheHits = st.Hits
	res.CacheMisses = st.Misses
	bst := ctx.Builds.Stats()
	res.LBGraphHits = bst.Hits
	res.LBGraphMisses = bst.Misses
	res.InstanceJobs = ctx.InstanceJobs()
	if err != nil {
		res.Status = StatusFailed
		res.Error = err.Error()
		fmt.Fprintf(buf, "**FAILED**: %v\n\n", err)
		return
	}
	res.Status = StatusOK
	fmt.Fprintf(buf, "\n")
}
