// Package runner executes registered experiments as shardable jobs over a
// persistent worker pool, turning the experiment suite from a sequential
// batch script into a concurrent engine with machine-readable results.
//
// Two properties drive the design:
//
//   - Markdown reports are byte-identical to a sequential run. Each job
//     streams its experiment's markdown into a private buffer; the main
//     goroutine flushes the buffers in experiment order, each as soon as
//     its job finishes. With one worker this degenerates to exactly the
//     sequential pipeline; with many, only wall-clock changes.
//   - Every run also produces a structured JSON result envelope — one
//     record per experiment (status, wall time, exact-solver work, solve
//     cache traffic) plus run-level totals — so CI and tooling consume
//     results without parsing markdown. cmd/benchjson validates the
//     envelope; .github/workflows/ci.yml archives it.
//
// Experiments run concurrently, so their solver work meets in the shared
// content-addressed solve cache (internal/mis/cache): a graph solved by
// one job is a cache hit for every other job that builds the same graph.
// Each job nevertheless sees only its own traffic: it runs under a private
// cache.Session, which is what makes the per-experiment solver/cache
// numbers in the envelope exact at any pool size (they used to be diffs of
// process-global counters, approximate whenever jobs overlapped).
package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"congestlb/internal/experiments"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
)

// Schema identifies the envelope format; bump when fields change meaning.
// v2: per-experiment solver/cache numbers are exact per-job attribution
// (not global-counter diffs), solver_workers records the run's solver
// parallelism, and the run-level cache block carries disk-tier traffic.
const Schema = "congestlb/experiment-envelope/v2"

// Experiment statuses in the envelope.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Options configures a Run.
type Options struct {
	// Jobs is the worker-pool size; values < 1 select GOMAXPROCS. The
	// pool is clamped to the number of experiments.
	Jobs int
	// SolverWorkers is the branch-and-bound worker count stamped onto
	// every exact solve of the run (0 = the solver's default, GOMAXPROCS).
	// The effective value is recorded in the envelope.
	SolverWorkers int
}

// ExperimentResult is one experiment's record in the JSON envelope.
type ExperimentResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	PaperRef string `json:"paper_ref"`
	// Status is StatusOK or StatusFailed.
	Status string `json:"status"`
	// Error carries the failure text when Status is StatusFailed.
	Error string `json:"error,omitempty"`
	// WallMS is the experiment's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SolveSteps is the branch-and-bound work (solver steps) performed on
	// behalf of this experiment; CacheHits/CacheMisses are the solve-cache
	// lookups it triggered, and StepsSaved the solver work those hits
	// avoided. Each job runs under its own cache.Session, so all four are
	// exact at any Jobs count. With single-flight dedup, a solve two
	// overlapping experiments both need books its steps under the one that
	// ran it; the other records a hit and the StepsSaved.
	SolveSteps  int64  `json:"solve_steps"`
	StepsSaved  int64  `json:"steps_saved"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Envelope is the structured result of one runner invocation.
type Envelope struct {
	Schema string `json:"schema"`
	// Jobs is the effective worker-pool size of the run; SolverWorkers the
	// effective per-solve branch-and-bound worker count.
	Jobs          int `json:"jobs"`
	SolverWorkers int `json:"solver_workers"`
	// WallMS is the whole run's wall-clock time; SequentialMS sums the
	// per-experiment wall times, so WallMS/SequentialMS exposes the
	// sharding win on multi-core runs.
	WallMS       float64 `json:"wall_ms"`
	SequentialMS float64 `json:"sequential_ms"`
	// OK and Failed count experiment statuses.
	OK     int `json:"ok"`
	Failed int `json:"failed"`
	// Cache reports the shared solve cache's traffic across the run: the
	// hit/miss/eviction/steps fields are counter deltas (this run only);
	// Entries is the cache's occupancy level at the end of the run, not a
	// delta.
	Cache cache.Stats `json:"cache"`
	// Experiments holds one record per experiment, in report order.
	Experiments []ExperimentResult `json:"experiments"`
}

// Run executes the given experiments over a worker pool and streams the
// combined markdown report to w (pass nil to discard). The report bytes
// are identical to a sequential experiments.RunAll over the same list,
// whatever the pool size. The returned error aggregates experiment
// failures exactly like experiments.RunAll; the envelope is valid (and
// complete) even when experiments fail.
func Run(exps []experiments.Experiment, opts Options, w io.Writer) (Envelope, error) {
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	if jobs < 1 {
		jobs = 1
	}
	if w == nil {
		w = io.Discard
	}
	solverWorkers := opts.SolverWorkers
	if solverWorkers <= 0 {
		solverWorkers = mis.DefaultWorkers()
	}
	if solverWorkers <= 0 {
		solverWorkers = runtime.GOMAXPROCS(0)
	}

	env := Envelope{
		Schema:        Schema,
		Jobs:          jobs,
		SolverWorkers: solverWorkers,
		Experiments:   make([]ExperimentResult, len(exps)),
	}
	start := time.Now()
	cacheBefore := cache.Shared().Stats()

	// Each job owns the buffer and result slot of its experiment index;
	// done[i] is closed when slot i is final. The flush loop below waits
	// on the slots in order, so output streams as soon as the next
	// experiment in report order has finished — not only at the end.
	type slot struct {
		buf  strings.Builder
		done chan struct{}
	}
	slots := make([]*slot, len(exps))
	for i := range slots {
		slots[i] = &slot{done: make(chan struct{})}
	}
	tasks := make(chan int)
	for worker := 0; worker < jobs; worker++ {
		go func() {
			for i := range tasks {
				runOne(exps[i], &slots[i].buf, &env.Experiments[i], opts.SolverWorkers)
				close(slots[i].done)
			}
		}()
	}
	go func() {
		for i := range exps {
			tasks <- i
		}
		close(tasks)
	}()

	var writeErr error
	for i := range slots {
		<-slots[i].done
		if writeErr == nil {
			_, writeErr = io.WriteString(w, slots[i].buf.String())
		}
		slots[i].buf.Reset()
	}

	env.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	cacheAfter := cache.Shared().Stats()
	env.Cache = cache.Stats{
		Hits:          cacheAfter.Hits - cacheBefore.Hits,
		Misses:        cacheAfter.Misses - cacheBefore.Misses,
		Evictions:     cacheAfter.Evictions - cacheBefore.Evictions,
		Entries:       cacheAfter.Entries,
		StepsSolved:   cacheAfter.StepsSolved - cacheBefore.StepsSolved,
		StepsSaved:    cacheAfter.StepsSaved - cacheBefore.StepsSaved,
		DiskHits:      cacheAfter.DiskHits - cacheBefore.DiskHits,
		DiskMisses:    cacheAfter.DiskMisses - cacheBefore.DiskMisses,
		DiskWrites:    cacheAfter.DiskWrites - cacheBefore.DiskWrites,
		DiskEvictions: cacheAfter.DiskEvictions - cacheBefore.DiskEvictions,
	}

	var failures []string
	for _, r := range env.Experiments {
		env.SequentialMS += r.WallMS
		if r.Status == StatusFailed {
			env.Failed++
			failures = append(failures, fmt.Sprintf("%s: %s", r.ID, r.Error))
		} else {
			env.OK++
		}
	}
	// Joined, not prioritised: a report-writer error (disk full) must not
	// mask which experiments failed, and vice versa.
	var failErr error
	if len(failures) > 0 {
		failErr = fmt.Errorf("experiments failed:\n  %s", strings.Join(failures, "\n  "))
	}
	if writeErr != nil {
		return env, errors.Join(failErr, fmt.Errorf("runner: report write: %w", writeErr))
	}
	return env, failErr
}

// runOne executes a single experiment into its private buffer and fills
// its envelope record. The markdown framing replicates experiments.RunAll
// byte for byte. The private cache.Session makes the solver/cache numbers
// exactly this experiment's, however many jobs run concurrently.
func runOne(e experiments.Experiment, buf *strings.Builder, res *ExperimentResult, solverWorkers int) {
	res.ID, res.Title, res.PaperRef = e.ID, e.Title, e.PaperRef
	fmt.Fprintf(buf, "## %s — %s\n\n*Reproduces: %s*\n\n", e.ID, e.Title, e.PaperRef)
	sess := cache.NewSession(nil, solverWorkers)
	start := time.Now()
	err := e.Run(experiments.NewCtx(buf, sess))
	res.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	st := sess.Stats()
	res.SolveSteps = st.StepsSolved
	res.StepsSaved = st.StepsSaved
	res.CacheHits = st.Hits
	res.CacheMisses = st.Misses
	if err != nil {
		res.Status = StatusFailed
		res.Error = err.Error()
		fmt.Fprintf(buf, "**FAILED**: %v\n\n", err)
		return
	}
	res.Status = StatusOK
	fmt.Fprintf(buf, "\n")
}
