// Package runner executes registered experiments as shardable jobs over a
// persistent worker pool, turning the experiment suite from a sequential
// batch script into a concurrent engine with machine-readable results.
//
// Two properties drive the design:
//
//   - Markdown reports are byte-identical to a sequential run. Each job
//     streams its experiment's markdown into a private buffer; the main
//     goroutine flushes the buffers in experiment order, each as soon as
//     its job finishes. With one worker this degenerates to exactly the
//     sequential pipeline; with many, only wall-clock changes.
//   - Every run also produces a structured JSON result envelope — one
//     record per experiment (status, wall time, exact-solver work, solve
//     and build cache traffic, instance-job count) plus run-level totals —
//     so CI and tooling consume results without parsing markdown.
//     cmd/benchjson validates the envelope; .github/workflows/ci.yml
//     archives it.
//
// Sharding happens at two levels over one experiments.Scheduler pool:
// each experiment is a pool job, and the sweep loops inside an experiment
// submit their per-instance work (build + simulate + solve of one sweep
// point) back into the same pool via Ctx.Go/Ctx.Gather. Nested gathering
// cannot deadlock the pool: a gatherer claims its still-queued jobs and
// runs them inline rather than blocking on them (see
// internal/experiments/context.go). The pool size is therefore NOT
// clamped to the experiment count — extra workers drain instance jobs.
//
// Experiments run concurrently, so their solver work meets in the shared
// content-addressed solve cache (internal/mis/cache) and their graph
// constructions in the shared build cache (internal/lbgraph): a graph
// solved or built by one job is a cache hit for every other job that
// needs the same one. Each job nevertheless sees only its own traffic: it
// runs under private cache.Session / lbgraph.CacheSession views, which is
// what makes the per-experiment numbers in the envelope exact at any pool
// size (they used to be diffs of process-global counters, approximate
// whenever jobs overlapped).
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"congestlb/internal/experiments"
	"congestlb/internal/fault"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
	"congestlb/internal/obs"
)

// Schema identifies the envelope format; bump when fields change meaning.
// v4: runs are context-aware — per-experiment cancelled flag and run-level
// cancelled count record experiments left unfinished when the run's
// context fired (cmd/experiments -timeout), and Options can pin the run to
// caller-owned caches and a caller-owned scheduler (the congestlb.Lab
// isolation seam) instead of the process-wide shared ones.
// v5: batched-simulation accounting — per-experiment batch_jobs /
// batched_instances count the lockstep congest.RunBatch passes the
// experiment submitted and the simulation instances they carried, and the
// run-level batch block sums them.
// v6: observability — when Options.Obs carries a registry, the envelope
// embeds the run's metrics delta (run-scoped counter/gauge/histogram
// snapshot, sum-consistent with the legacy cache/lbgraph/batch counters)
// and a span summary (count/total/max ns per span name). Both blocks are
// omitted on registry-less runs, whose envelopes are byte-identical to v5
// apart from the schema string.
// v7: fault containment — per-experiment and run-level failures blocks
// (panics recovered, solver-worker panics, degraded solves, disk-tier
// retries and quarantined entries; see docs/robustness.md), omitted when
// all-zero, so fault-free envelopes are byte-identical to v6 apart from
// the schema string. The cache blocks may additionally carry the
// disk_retries/disk_quarantined/worker_panics/degraded_solves counters.
const Schema = "congestlb/experiment-envelope/v7"

// Experiment statuses in the envelope.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Options configures a Run.
type Options struct {
	// Jobs is the worker-pool size; values < 1 select GOMAXPROCS. The
	// pool is shared between experiment-level and per-instance jobs, so
	// values above the experiment count still buy parallelism. Ignored
	// when Scheduler is set (the scheduler's own size wins).
	Jobs int
	// SolverWorkers is the branch-and-bound worker count stamped onto
	// every exact solve of the run (0 = the solver's default, GOMAXPROCS).
	// The effective value is recorded in the envelope.
	SolverWorkers int
	// SolveCache pins the run's exact solves to a caller-owned cache
	// instead of the process-wide shared one; BuildCache does the same for
	// the lower-bound graph constructions. Both nil by default (shared
	// caches), both set by congestlb.Lab so two Labs in one process share
	// no cache state whatsoever.
	SolveCache *cache.Cache
	BuildCache *lbgraph.BuildCache
	// UncachedBuilds bypasses every build cache (constructions run from
	// scratch, attribution intact) — the Lab's WithBuildCache(false) mode.
	// BuildCache is ignored when set.
	UncachedBuilds bool
	// Scheduler reuses a caller-owned worker pool across runs instead of
	// starting (and stopping) a private one. The caller keeps ownership:
	// Run never closes it.
	Scheduler *experiments.Scheduler
	// Obs attaches a metrics registry to the run: solve/build caches and
	// engines record into it (callers wire the caches via their
	// SetRegistry before the run — congestlb.Lab does), spans wrap the run
	// → experiment → job/simulate/solve tree, and the envelope embeds the
	// run-scoped Metrics delta and Spans summary. When the runner owns the
	// scheduler it attaches the registry to it too; a caller-owned
	// Scheduler keeps whatever registry the caller set. Nil = no
	// observability, envelope blocks omitted.
	Obs *obs.Registry
}

// ExperimentResult is one experiment's record in the JSON envelope.
type ExperimentResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	PaperRef string `json:"paper_ref"`
	// Status is StatusOK or StatusFailed.
	Status string `json:"status"`
	// Error carries the failure text when Status is StatusFailed.
	Error string `json:"error,omitempty"`
	// Cancelled marks an experiment left unfinished because the run's
	// context fired — either before it started (nothing ran) or mid-run
	// (partial work, incumbent-style results discarded). Cancelled
	// experiments also count as failed; the flag distinguishes "the
	// deadline hit" from "an assertion failed".
	Cancelled bool `json:"cancelled,omitempty"`
	// WallMS is the experiment's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// InstanceJobs counts the per-instance jobs the experiment submitted
	// to the shared pool via Ctx.Go — the intra-experiment sharding grain.
	InstanceJobs int64 `json:"instance_jobs"`
	// SolveSteps is the branch-and-bound work (solver steps) performed on
	// behalf of this experiment; CacheHits/CacheMisses are the solve-cache
	// lookups it triggered, and StepsSaved the solver work those hits
	// avoided. Each job runs under its own cache.Session, so all four are
	// exact at any Jobs count. With single-flight dedup, a solve two
	// overlapping experiments both need books its steps under the one that
	// ran it; the other records a hit and the StepsSaved.
	SolveSteps  int64  `json:"solve_steps"`
	StepsSaved  int64  `json:"steps_saved"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// LBGraphHits/LBGraphMisses are the experiment's lower-bound graph
	// build-cache lookups, attributed exactly through its private
	// lbgraph.CacheSession.
	LBGraphHits   uint64 `json:"lbgraph_hits"`
	LBGraphMisses uint64 `json:"lbgraph_misses"`
	// BatchJobs counts the lockstep batch passes (Ctx.GoBatch fusions and
	// direct congest.RunBatch calls the experiment noted) and
	// BatchedInstances the simulation instances that rode them instead of
	// occupying one pool job each. InstanceJobs counts a whole batch pass
	// as one job, so BatchedInstances - BatchJobs is the submission work
	// batching removed.
	BatchJobs        int64 `json:"batch_jobs"`
	BatchedInstances int64 `json:"batched_instances"`
	// Failures is the experiment's fault-containment accounting, omitted
	// when nothing went wrong (the overwhelmingly common case).
	Failures *FailureStats `json:"failures,omitempty"`
}

// FailureStats is the envelope's fault-containment block: what the
// robustness layer absorbed on behalf of one experiment (or, at run
// level, the whole run). All counters are exact — panics are counted
// where they are recovered and attributed through the experiment's
// private sessions — which is what the chaos suite asserts.
type FailureStats struct {
	// PanicsRecovered counts panics recovered while executing this
	// experiment: its body (Run), its scheduler instance jobs, and any
	// engine worker panic that surfaced as a job error.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// SolverWorkerPanics counts exact-solver worker panics recovered
	// inside this experiment's fresh solves (the solve still completed
	// canonically on the surviving workers unless DegradedSolves says
	// otherwise).
	SolverWorkerPanics uint64 `json:"solver_worker_panics"`
	// DegradedSolves counts fresh solves that lost every worker and fell
	// back to the incumbent witness with an error.
	DegradedSolves uint64 `json:"degraded_solves"`
	// DiskRetries counts solve-cache disk-tier I/O attempts retried after
	// transient errors; DiskQuarantined counts invalid disk entries moved
	// to the quarantine sidecar instead of being served.
	DiskRetries     uint64 `json:"disk_retries"`
	DiskQuarantined uint64 `json:"disk_quarantined"`
}

// Any reports whether any counter is non-zero.
func (f FailureStats) Any() bool { return f != FailureStats{} }

// Add accumulates other into f (benchjson re-sums the per-experiment
// blocks with it to validate the run-level block).
func (f *FailureStats) Add(other FailureStats) {
	f.PanicsRecovered += other.PanicsRecovered
	f.SolverWorkerPanics += other.SolverWorkerPanics
	f.DegradedSolves += other.DegradedSolves
	f.DiskRetries += other.DiskRetries
	f.DiskQuarantined += other.DiskQuarantined
}

// BatchTotals is the run-level sum of the per-experiment batch accounting.
type BatchTotals struct {
	BatchJobs        int64 `json:"batch_jobs"`
	BatchedInstances int64 `json:"batched_instances"`
}

// Envelope is the structured result of one runner invocation.
type Envelope struct {
	Schema string `json:"schema"`
	// Jobs is the effective worker-pool size of the run; SolverWorkers the
	// effective per-solve branch-and-bound worker count.
	Jobs          int `json:"jobs"`
	SolverWorkers int `json:"solver_workers"`
	// WallMS is the whole run's wall-clock time; SequentialMS sums the
	// per-experiment wall times, so WallMS/SequentialMS exposes the
	// sharding win on multi-core runs.
	WallMS       float64 `json:"wall_ms"`
	SequentialMS float64 `json:"sequential_ms"`
	// OK and Failed count experiment statuses; Cancelled counts the subset
	// of failures that were context cancellations (always ≤ Failed).
	OK        int `json:"ok"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled,omitempty"`
	// Cache reports the shared solve cache's traffic across the run: the
	// hit/miss/eviction/steps fields are counter deltas (this run only);
	// Entries is the cache's occupancy level at the end of the run, not a
	// delta.
	Cache cache.Stats `json:"cache"`
	// LBGraph reports the shared lower-bound-graph build cache's traffic
	// across the run, with the same delta/occupancy convention as Cache.
	LBGraph lbgraph.CacheStats `json:"lbgraph_cache"`
	// Batch sums the per-experiment batched-simulation accounting.
	Batch BatchTotals `json:"batch"`
	// Failures sums the per-experiment failures blocks; omitted when the
	// whole run was fault-free.
	Failures *FailureStats `json:"failures,omitempty"`
	// Metrics is the run-scoped delta of the Options.Obs registry
	// (counters/histograms diffed across the run window, gauges at their
	// end-of-run level); Spans aggregates the spans the run completed, by
	// name. Both nil when the run carried no registry.
	Metrics *obs.Snapshot  `json:"metrics,omitempty"`
	Spans   []obs.SpanStat `json:"spans,omitempty"`
	// Experiments holds one record per experiment, in report order.
	Experiments []ExperimentResult `json:"experiments"`
}

// Run executes the given experiments over a worker pool and streams the
// combined markdown report to w (pass nil to discard). The report bytes
// are identical to a sequential experiments.RunAll over the same list,
// whatever the pool size. The returned error aggregates experiment
// failures exactly like experiments.RunAll; the envelope is valid (and
// complete) even when experiments fail.
func Run(exps []experiments.Experiment, opts Options, w io.Writer) (Envelope, error) {
	return RunCtx(context.Background(), exps, opts, w)
}

// RunCtx is Run under a context. Cancellation is cooperative and loss-free
// for the envelope: experiments still queued when the context fires are
// recorded as cancelled without running, in-flight experiments observe the
// context through their solve sessions, CONGEST round loops and instance
// jobs and come back with a ctx error, and the envelope (with cancelled
// flags and counts) plus whatever report sections completed are still
// produced — a partial but well-formed result, never a torn one.
func RunCtx(ctx context.Context, exps []experiments.Experiment, opts Options, w io.Writer) (Envelope, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if w == nil {
		w = io.Discard
	}
	solverWorkers := opts.SolverWorkers
	if solverWorkers <= 0 {
		solverWorkers = mis.DefaultWorkers()
	}
	if solverWorkers <= 0 {
		solverWorkers = runtime.GOMAXPROCS(0)
	}
	// The stats below diff the caches this run actually uses: the shared
	// pair by default, the caller's own (a Lab's) when pinned in Options.
	// An UncachedBuilds run touches no build cache at all — its run-level
	// lbgraph numbers come from summing the per-experiment sessions
	// instead (below), so no snapshot is taken.
	statsCache := opts.SolveCache
	if statsCache == nil {
		statsCache = cache.Shared()
	}
	var statsBuild *lbgraph.BuildCache
	if !opts.UncachedBuilds {
		statsBuild = opts.BuildCache
		if statsBuild == nil {
			statsBuild = lbgraph.SharedBuildCache()
		}
	}
	// An observed run points the caches it uses at its registry (a Lab
	// already did this for its own caches; re-attaching the same registry
	// is idempotent). Last attachment wins, so two concurrent observed
	// runs over the *shared* caches would attribute approximately — pin
	// caches per run (as Lab does) when that matters.
	if opts.Obs != nil {
		statsCache.SetRegistry(opts.Obs)
		if statsBuild != nil {
			statsBuild.SetRegistry(opts.Obs)
		}
	}

	// One scheduler serves both levels: experiment jobs submitted here and
	// the per-instance jobs those experiments fan out through Ctx.Go.
	// Each job owns the buffer and result slot of its experiment index;
	// done[i] is closed when slot i is final. The flush loop below waits
	// on the slots in order, so output streams as soon as the next
	// experiment in report order has finished — not only at the end.
	sched := opts.Scheduler
	ownSched := sched == nil
	if ownSched {
		sched = experiments.NewScheduler(jobs)
		if opts.Obs != nil {
			sched.SetRegistry(opts.Obs)
		}
	} else {
		jobs = sched.Workers()
	}

	// Observability scoping: the metrics snapshot and span watermark taken
	// here make the envelope's blocks deltas of this run alone, so a Lab
	// running suites back to back gets per-run numbers, not lifetime ones.
	var preMetrics obs.Snapshot
	var spanMark int
	var runSpan obs.Span
	if opts.Obs != nil {
		preMetrics = opts.Obs.Snapshot()
		spanMark = opts.Obs.SpanMark()
		ctx = obs.NewContext(ctx, opts.Obs)
		ctx, runSpan = obs.Begin(ctx, "run")
	}

	env := Envelope{
		Schema:        Schema,
		Jobs:          jobs,
		SolverWorkers: solverWorkers,
		Experiments:   make([]ExperimentResult, len(exps)),
	}
	start := time.Now()
	cacheBefore := statsCache.Stats()
	var buildBefore lbgraph.CacheStats
	if statsBuild != nil {
		buildBefore = statsBuild.Stats()
	}

	type slot struct {
		buf  strings.Builder
		done chan struct{}
		// sess holds the experiment's full session counters (a superset of
		// what its envelope record carries — the disk-tier fields live only
		// here); the run-level traffic totals are their sum.
		sess cache.Stats
	}
	slots := make([]*slot, len(exps))
	for i := range slots {
		slots[i] = &slot{done: make(chan struct{})}
	}
	for i := range exps {
		sched.Submit(func() {
			slots[i].sess = runOne(ctx, exps[i], sched, &slots[i].buf, &env.Experiments[i], opts)
			close(slots[i].done)
		})
	}

	var writeErr error
	for i := range slots {
		<-slots[i].done
		if writeErr == nil {
			_, writeErr = io.WriteString(w, slots[i].buf.String())
		}
		slots[i].buf.Reset()
	}
	if ownSched {
		sched.Close()
	}

	env.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	// Run-level traffic is the sum of the per-experiment session counters:
	// exact at any concurrency, including overlapping RunExperiments calls
	// on one Lab, where diffing the cache across this run's window would
	// book the other run's traffic too. Evictions and Entries stay
	// snapshot-based — they belong to the cache, not to any one run.
	for _, s := range slots {
		st := s.sess
		env.Cache.Hits += st.Hits
		env.Cache.SharedHits += st.SharedHits
		env.Cache.Misses += st.Misses
		env.Cache.StepsSolved += st.StepsSolved
		env.Cache.StepsSaved += st.StepsSaved
		env.Cache.DiskHits += st.DiskHits
		env.Cache.DiskMisses += st.DiskMisses
		env.Cache.DiskWrites += st.DiskWrites
		env.Cache.DiskEvictions += st.DiskEvictions
		env.Cache.DiskRetries += st.DiskRetries
		env.Cache.DiskQuarantined += st.DiskQuarantined
		env.Cache.WorkerPanics += st.WorkerPanics
		env.Cache.DegradedSolves += st.DegradedSolves
	}
	cacheAfter := statsCache.Stats()
	env.Cache.Evictions = cacheAfter.Evictions - cacheBefore.Evictions
	env.Cache.Entries = cacheAfter.Entries
	// Same summation story for the build cache (whose per-experiment
	// session counters already sit in the records); with UncachedBuilds
	// (statsBuild nil) there is no cache to snapshot occupancy from.
	for _, r := range env.Experiments {
		env.LBGraph.Hits += r.LBGraphHits
		env.LBGraph.Misses += r.LBGraphMisses
		env.Batch.BatchJobs += r.BatchJobs
		env.Batch.BatchedInstances += r.BatchedInstances
	}
	if statsBuild != nil {
		buildAfter := statsBuild.Stats()
		env.LBGraph.Evictions = buildAfter.Evictions - buildBefore.Evictions
		env.LBGraph.Entries = buildAfter.Entries
	}
	if opts.Obs != nil {
		runSpan.End()
		delta := opts.Obs.Snapshot().DeltaSince(preMetrics)
		env.Metrics = &delta
		env.Spans = opts.Obs.SpanStatsSince(spanMark)
	}

	var runFailures FailureStats
	var failures []string
	for _, r := range env.Experiments {
		if r.Failures != nil {
			runFailures.Add(*r.Failures)
		}
		env.SequentialMS += r.WallMS
		if r.Status == StatusFailed {
			env.Failed++
			if r.Cancelled {
				env.Cancelled++
			}
			failures = append(failures, fmt.Sprintf("%s: %s", r.ID, r.Error))
		} else {
			env.OK++
		}
	}
	if runFailures.Any() {
		env.Failures = &runFailures
	}
	// Joined, not prioritised: a report-writer error (disk full) must not
	// mask which experiments failed, and vice versa.
	var failErr error
	if len(failures) > 0 {
		failErr = fmt.Errorf("experiments failed:\n  %s", strings.Join(failures, "\n  "))
	}
	if writeErr != nil {
		return env, errors.Join(failErr, fmt.Errorf("runner: report write: %w", writeErr))
	}
	return env, failErr
}

// runOne executes a single experiment into its private buffer, fills its
// envelope record, and returns the experiment's full solve-session
// counters (the run-level totals are their sum). The markdown framing replicates experiments.RunAll
// byte for byte. The private cache sessions make the solver/cache/build
// numbers exactly this experiment's, however many jobs run concurrently;
// the scheduler hands the experiment's Ctx.Go instance jobs to the shared
// pool.
func runOne(ctx context.Context, e experiments.Experiment, sched *experiments.Scheduler, buf *strings.Builder, res *ExperimentResult, opts Options) cache.Stats {
	res.ID, res.Title, res.PaperRef = e.ID, e.Title, e.PaperRef
	fmt.Fprintf(buf, "## %s — %s\n\n*Reproduces: %s*\n\n", e.ID, e.Title, e.PaperRef)
	if err := ctx.Err(); err != nil {
		// The run's context fired while this experiment was still queued:
		// record it as cancelled without running anything, so the envelope
		// stays complete (one record per experiment) on a timeout.
		res.Status, res.Error, res.Cancelled = StatusFailed, err.Error(), true
		fmt.Fprintf(buf, "**FAILED**: %v\n\n", err)
		return cache.Stats{}
	}
	var esp obs.Span
	ctx, esp = obs.Begin(ctx, "experiment:"+e.ID)
	defer esp.End()
	sess := cache.NewSession(opts.SolveCache, opts.SolverWorkers).WithContext(ctx)
	var bsess *lbgraph.CacheSession
	if opts.UncachedBuilds {
		bsess = lbgraph.NewUncachedCacheSession()
	} else {
		bsess = lbgraph.NewCacheSession(opts.BuildCache)
	}
	ectx := experiments.NewCtx(buf, sess).WithBuilds(bsess).WithScheduler(sched).WithContext(ctx)
	start := time.Now()
	recovered, err := runBody(ectx, e)
	// An experiment that errors between Go and Gather leaves instance
	// jobs queued or running. Drain them before snapshotting: their cache
	// traffic belongs to this experiment's record, and a leaked job must
	// not keep occupying a pool worker (or mutating this experiment's
	// sessions) into later experiments' windows. Their errors are
	// discarded — a sequential early-returning loop never ran them.
	_ = ectx.Gather()
	res.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	st := sess.Stats()
	sessStats := st
	res.SolveSteps = st.StepsSolved
	res.StepsSaved = st.StepsSaved
	res.CacheHits = st.Hits
	res.CacheMisses = st.Misses
	bst := ectx.Builds.Stats()
	res.LBGraphHits = bst.Hits
	res.LBGraphMisses = bst.Misses
	res.InstanceJobs = ectx.InstanceJobs()
	res.BatchJobs = ectx.BatchJobs()
	res.BatchedInstances = ectx.BatchedInstances()
	f := FailureStats{
		// Gathered instance jobs that failed with a recovered panic, plus
		// the experiment body itself if runBody caught one. No double
		// counting: a body panic never reaches the job layer (runBody
		// recovers first), and job panics surface as job errors, not as
		// body panics.
		PanicsRecovered:    uint64(ectx.PanicsRecovered()),
		SolverWorkerPanics: st.WorkerPanics,
		DegradedSolves:     st.DegradedSolves,
		DiskRetries:        st.DiskRetries,
		DiskQuarantined:    st.DiskQuarantined,
	}
	if recovered {
		f.PanicsRecovered++
	}
	if f.Any() {
		res.Failures = &f
	}
	if err != nil {
		res.Status = StatusFailed
		res.Error = err.Error()
		// Classify context cancellations (the experiment was healthy, the
		// deadline was not) so cmd/experiments -timeout can report a
		// partial envelope honestly. Only the error chain decides — the
		// plumbing wraps ctx errors with %w everywhere — because "the
		// deadline has expired by now" must not relabel a genuine
		// assertion failure that raced it as a mere timeout.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			res.Cancelled = true
		}
		fmt.Fprintf(buf, "**FAILED**: %v\n\n", err)
		return sessStats
	}
	res.Status = StatusOK
	fmt.Fprintf(buf, "\n")
	return sessStats
}

// runBody executes the experiment's Run with panic containment: a panic
// anywhere in the body (or in an inline-claimed instance job that the
// scheduler's own recovery did not see first) fails this experiment with
// a structured *fault.PanicError instead of tearing down the runner — and
// crucially instead of skipping the slot's done-channel close, which
// would deadlock the flush loop. recovered reports whether the error is a
// panic runBody itself caught (as opposed to one a lower layer already
// converted and returned as a plain error).
func runBody(ectx *experiments.Ctx, e experiments.Experiment) (recovered bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			recovered = true
			err = fault.NewPanicError("experiment:"+e.ID, r)
		}
	}()
	fault.MaybePanic(fault.JobPanic, e.ID)
	return false, e.Run(ectx)
}
