package runner

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"congestlb/internal/experiments"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis/cache"
)

// fastSubset picks a handful of real experiments with distinct workloads.
func fastSubset(t *testing.T) []experiments.Experiment {
	t.Helper()
	exps, err := experiments.Select([]string{"figure1", "codes", "cutsize", "solver", "twoparty"})
	if err != nil {
		t.Fatal(err)
	}
	return exps
}

func TestShardedReportMatchesSequential(t *testing.T) {
	exps := fastSubset(t)

	var sequential bytes.Buffer
	if _, err := Run(exps, Options{Jobs: 1}, &sequential); err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if _, err := Run(exps, Options{Jobs: 4}, &sharded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sequential.Bytes(), sharded.Bytes()) {
		t.Fatalf("sharded report differs from sequential run:\n--- jobs=1 ---\n%.400s\n--- jobs=4 ---\n%.400s",
			sequential.String(), sharded.String())
	}
}

// TestRunMatchesRunAll pins the runner's framing to the legacy sequential
// aggregator byte for byte, over the full registry.
func TestRunMatchesRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry comparison runs every experiment; skipped in -short mode")
	}
	var legacy bytes.Buffer
	if err := experiments.RunAll(&legacy); err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if _, err := Run(experiments.All(), Options{Jobs: 4}, &sharded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), sharded.Bytes()) {
		t.Fatal("runner output diverged from experiments.RunAll")
	}
}

func TestEnvelopeFields(t *testing.T) {
	exps := fastSubset(t)
	env, err := Run(exps, Options{Jobs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.Schema != Schema {
		t.Fatalf("schema %q", env.Schema)
	}
	if env.Jobs != 2 {
		t.Fatalf("jobs %d", env.Jobs)
	}
	if env.OK != len(exps) || env.Failed != 0 {
		t.Fatalf("counts ok=%d failed=%d", env.OK, env.Failed)
	}
	if env.WallMS <= 0 || env.SequentialMS <= 0 {
		t.Fatalf("wall times not recorded: %+v", env)
	}
	if len(env.Experiments) != len(exps) {
		t.Fatalf("%d records for %d experiments", len(env.Experiments), len(exps))
	}
	for i, r := range env.Experiments {
		if r.ID != exps[i].ID {
			t.Fatalf("record %d is %s, want %s (order must match the report)", i, r.ID, exps[i].ID)
		}
		if r.Status != StatusOK {
			t.Fatalf("%s status %q: %s", r.ID, r.Status, r.Error)
		}
		if r.WallMS < 0 {
			t.Fatalf("%s wall %f", r.ID, r.WallMS)
		}
	}
	// The subset includes exact solves (figure1, solver, twoparty), so the
	// run must have recorded solver traffic. (Whether it lands as hits or
	// misses depends on what earlier tests left in the shared cache.)
	if env.Cache.Hits+env.Cache.Misses == 0 {
		t.Fatalf("no solve-cache traffic recorded: %+v", env.Cache)
	}
}

// TestPerJobAttributionExact is the thread-local accounting property: with
// a fresh shared cache and heavily overlapping jobs, the per-experiment
// session counters must sum exactly to the run-level cache delta — no
// traffic double-counted, none lost to a concurrent job's window.
func TestPerJobAttributionExact(t *testing.T) {
	exps := fastSubset(t)
	cache.Shared().Reset()
	defer cache.Shared().Reset()
	env, err := Run(exps, Options{Jobs: len(exps)}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses uint64
	var solved, saved int64
	for _, r := range env.Experiments {
		hits += r.CacheHits
		misses += r.CacheMisses
		solved += r.SolveSteps
		saved += r.StepsSaved
	}
	if hits != env.Cache.Hits || misses != env.Cache.Misses {
		t.Fatalf("lookup attribution drifted: experiments sum %d/%d, run delta %d/%d",
			hits, misses, env.Cache.Hits, env.Cache.Misses)
	}
	if solved != env.Cache.StepsSolved || saved != env.Cache.StepsSaved {
		t.Fatalf("step attribution drifted: experiments sum %d solved / %d saved, run delta %d / %d",
			solved, saved, env.Cache.StepsSolved, env.Cache.StepsSaved)
	}
	if misses == 0 || solved == 0 {
		t.Fatalf("fresh cache saw no solver work: %+v", env.Cache)
	}
	if env.SolverWorkers < 1 {
		t.Fatalf("effective solver workers not recorded: %d", env.SolverWorkers)
	}
}

// TestLBGraphAttributionExact is the build-cache twin of the solve-cache
// attribution property: with a fresh shared build cache and overlapping
// jobs, the per-experiment lbgraph session counters must sum exactly to
// the run-level delta, and the sharded sweeps must record their instance
// jobs.
func TestLBGraphAttributionExact(t *testing.T) {
	exps := fastSubset(t)
	lbgraph.SharedBuildCache().Reset()
	defer lbgraph.SharedBuildCache().Reset()
	env, err := Run(exps, Options{Jobs: len(exps)}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses uint64
	var instanceJobs int64
	for _, r := range env.Experiments {
		hits += r.LBGraphHits
		misses += r.LBGraphMisses
		instanceJobs += r.InstanceJobs
	}
	if hits != env.LBGraph.Hits || misses != env.LBGraph.Misses {
		t.Fatalf("lbgraph attribution drifted: experiments sum %d/%d, run delta %d/%d",
			hits, misses, env.LBGraph.Hits, env.LBGraph.Misses)
	}
	if misses == 0 {
		t.Fatalf("fresh build cache saw no construction work: %+v", env.LBGraph)
	}
	// The subset includes sharded sweeps (cutsize, solver, twoparty), so
	// the run must have fanned out per-instance jobs.
	if instanceJobs == 0 {
		t.Fatal("no instance jobs recorded — intra-experiment sharding inactive")
	}
	for _, r := range env.Experiments {
		switch r.ID {
		case "cutsize", "solver", "twoparty":
			if r.InstanceJobs == 0 {
				t.Errorf("%s: sweep experiment recorded no instance jobs", r.ID)
			}
		}
	}
}

// TestWorkerPoolNotClampedToExperiments: since intra-experiment sharding,
// pool workers beyond the experiment count drain per-instance jobs, so
// the requested size is kept (and recorded) as-is.
func TestWorkerPoolNotClampedToExperiments(t *testing.T) {
	exps := fastSubset(t)[:2]
	env, err := Run(exps, Options{Jobs: 8}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if env.Jobs != 8 {
		t.Fatalf("requested pool size not honoured: jobs=%d", env.Jobs)
	}
}

func TestFailuresAggregateLikeRunAll(t *testing.T) {
	boom := errors.New("assertion blew up")
	exps := []experiments.Experiment{
		{ID: "alpha", Title: "A", PaperRef: "ref A", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "alpha body")
			return nil
		}},
		{ID: "beta", Title: "B", PaperRef: "ref B", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "beta body")
			return boom
		}},
		{ID: "gamma", Title: "C", PaperRef: "ref C", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "gamma body")
			return nil
		}},
	}
	var report bytes.Buffer
	env, err := Run(exps, Options{Jobs: 3}, &report)
	if err == nil {
		t.Fatal("failure did not surface")
	}
	want := "experiments failed:\n  beta: assertion blew up"
	if err.Error() != want {
		t.Fatalf("error %q, want %q (RunAll parity)", err.Error(), want)
	}
	if env.OK != 2 || env.Failed != 1 {
		t.Fatalf("counts ok=%d failed=%d", env.OK, env.Failed)
	}
	if env.Experiments[1].Status != StatusFailed || env.Experiments[1].Error != "assertion blew up" {
		t.Fatalf("beta record %+v", env.Experiments[1])
	}
	out := report.String()
	if !strings.Contains(out, "**FAILED**: assertion blew up") {
		t.Fatalf("report missing failure marker:\n%s", out)
	}
	// The failing experiment must not derail the ones after it.
	if !strings.Contains(out, "gamma body") {
		t.Fatalf("report missing post-failure section:\n%s", out)
	}
	// Order preserved despite concurrency.
	if strings.Index(out, "## alpha") > strings.Index(out, "## beta") ||
		strings.Index(out, "## beta") > strings.Index(out, "## gamma") {
		t.Fatalf("sections out of order:\n%s", out)
	}
}

func TestRunEmptyList(t *testing.T) {
	env, err := Run(nil, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.OK != 0 || env.Failed != 0 || len(env.Experiments) != 0 {
		t.Fatalf("empty run envelope %+v", env)
	}
}

// TestEnvelopeBatchAccounting: experiments that batch their sweeps
// (upperbounds through NoteBatch, scaling/theorem5 through GoBatch)
// record per-experiment batch counters, and the run-level Batch block is
// exactly their sum.
func TestEnvelopeBatchAccounting(t *testing.T) {
	exps, err := experiments.Select([]string{"upperbounds", "cutsize"})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Run(exps, Options{Jobs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var jobs, instances int64
	byID := map[string]ExperimentResult{}
	for _, r := range env.Experiments {
		jobs += r.BatchJobs
		instances += r.BatchedInstances
		byID[r.ID] = r
	}
	if env.Batch.BatchJobs != jobs || env.Batch.BatchedInstances != instances {
		t.Fatalf("run-level batch %+v is not the per-experiment sum %d/%d", env.Batch, jobs, instances)
	}
	// upperbounds fuses its four algorithm runs into one lockstep pass.
	if r := byID["upperbounds"]; r.BatchJobs != 1 || r.BatchedInstances != 4 {
		t.Fatalf("upperbounds batch accounting %d jobs / %d instances, want 1/4", r.BatchJobs, r.BatchedInstances)
	}
	// cutsize has no simulations to batch.
	if r := byID["cutsize"]; r.BatchJobs != 0 || r.BatchedInstances != 0 {
		t.Fatalf("cutsize batch accounting %d/%d, want 0/0", r.BatchJobs, r.BatchedInstances)
	}
}
