package serve

import (
	"fmt"

	"congestlb"
	"congestlb/internal/bitvec"
	"congestlb/internal/graphs"
)

// jobOptions are the request fields every POST endpoint shares.
type jobOptions struct {
	// DeadlineMS is the caller's wall-clock budget; the tenant quota's
	// MaxDeadlineMS caps it (and supplies it when absent). The effective
	// deadline becomes the job's context deadline, so an expired budget
	// cancels the work cooperatively and a solve returns its incumbent
	// with cancelled set.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Async makes the endpoint return 202 with the job id immediately;
	// poll GET /v1/jobs/{id} or stream /v1/jobs/{id}/stream.
	Async bool `json:"async,omitempty"`
}

// GraphSpec is the wire form of a vertex-weighted undirected graph.
type GraphSpec struct {
	// N is the node count; node ids are 0..n-1.
	N int `json:"n"`
	// Weights are per-node weights (len n); omitted means all-1.
	Weights []int64 `json:"weights,omitempty"`
	// Edges are undirected [u, v] pairs.
	Edges [][2]int `json:"edges"`
}

// graph materialises the spec, validating as it goes.
func (s GraphSpec) graph() (*congestlb.Graph, error) {
	const maxNodes = 1 << 20
	if s.N <= 0 || s.N > maxNodes {
		return nil, fmt.Errorf("graph: n must be in 1..%d, got %d", maxNodes, s.N)
	}
	if s.Weights != nil && len(s.Weights) != s.N {
		return nil, fmt.Errorf("graph: %d weights for %d nodes", len(s.Weights), s.N)
	}
	g := graphs.NewWithN(s.N)
	for v := 0; v < s.N; v++ {
		w := int64(1)
		if s.Weights != nil {
			w = s.Weights[v]
		}
		if w < 0 {
			return nil, fmt.Errorf("graph: node %d has negative weight %d", v, w)
		}
		g.AddNodeID(w)
	}
	for i, e := range s.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph: edge %d [%d,%d]: %w", i, e[0], e[1], err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return g, nil
}

// SolveRequest is the POST /v1/solve body.
type SolveRequest struct {
	jobOptions
	Graph GraphSpec `json:"graph"`
	// MaxSteps bounds the branch-and-bound search (0 = the solver
	// default); exhaustion returns the incumbent with optimal=false.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// WeightOnly relaxes the witness guarantee to just the weight,
	// letting the solve share cache entries with canonical solves.
	WeightOnly bool `json:"weight_only,omitempty"`
}

// SolveResult is the solve job's result payload.
type SolveResult struct {
	Weight  int64 `json:"weight"`
	Set     []int `json:"set,omitempty"`
	Optimal bool  `json:"optimal"`
	Steps   int64 `json:"steps"`
	// Cancelled marks a deadline/cancel-cut solve: Weight/Set are the
	// best incumbent found, a valid independent set but possibly not
	// optimal.
	Cancelled bool `json:"cancelled,omitempty"`
	// Cache is this request's exact cache attribution (a per-session
	// view — hits/misses/shared_hits booked on behalf of this call
	// only).
	Cache congestlb.SolveCacheStats `json:"cache"`
}

// ParamsSpec is the wire form of the lower-bound construction parameters.
type ParamsSpec struct {
	T     int `json:"t"`
	Alpha int `json:"alpha"`
	Ell   int `json:"ell"`
}

// CongestSpec is the wire form of the CONGEST model configuration.
type CongestSpec struct {
	BandwidthBits int64 `json:"bandwidth_bits,omitempty"`
	MaxRounds     int   `json:"max_rounds,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	Parallel      bool  `json:"parallel,omitempty"`
	Workers       int   `json:"workers,omitempty"`
}

// ReduceRequest is the POST /v1/reduce body.
type ReduceRequest struct {
	jobOptions
	// Family selects the construction: "linear", "quadratic" or
	// "unweighted".
	Family string     `json:"family"`
	Params ParamsSpec `json:"params"`
	// Inputs are the players' input vectors as '0'/'1' strings, one per
	// player, each family.InputBits() long.
	Inputs []string    `json:"inputs"`
	Config CongestSpec `json:"config"`
	// VerifyGap additionally audits the gap predicate against an exact
	// solve and reports the optimum.
	VerifyGap bool `json:"verify_gap,omitempty"`
}

// ReduceResult is the reduce job's result payload — the simulation
// report plus derived checks.
type ReduceResult struct {
	Family           string `json:"family"`
	Players          int    `json:"players"`
	N                int    `json:"n"`
	CutSize          int    `json:"cut_size"`
	Bandwidth        int64  `json:"bandwidth"`
	Rounds           int    `json:"rounds"`
	BlackboardBits   int64  `json:"blackboard_bits"`
	BlackboardWrites int64  `json:"blackboard_writes"`
	CongestTotalBits int64  `json:"congest_total_bits"`
	AccountingBound  int64  `json:"accounting_bound"`
	AccountingHolds  bool   `json:"accounting_holds"`
	Opt              int64  `json:"opt"`
	Decision         bool   `json:"decision"`
	Truth            bool   `json:"truth"`
	Correct          bool   `json:"correct"`
	SolveCacheHits   uint64 `json:"solve_cache_hits"`
	SolveCacheMisses uint64 `json:"solve_cache_misses"`
	// GapOpt is the audited optimum; present only with verify_gap.
	GapOpt *int64 `json:"gap_opt,omitempty"`
}

// ExperimentsRequest is the POST /v1/experiments body.
type ExperimentsRequest struct {
	jobOptions
	// IDs selects registered experiments (empty = all).
	IDs []string `json:"ids,omitempty"`
	// Report includes the combined markdown report in the result.
	Report bool `json:"report,omitempty"`
}

// ExperimentsResult is the experiments job's result payload.
type ExperimentsResult struct {
	Envelope congestlb.ExperimentEnvelope `json:"envelope"`
	Report   string                       `json:"report,omitempty"`
}

// familyFrom resolves the wire family name and parameters.
func familyFrom(name string, p ParamsSpec) (congestlb.Family, error) {
	params := congestlb.Params{T: p.T, Alpha: p.Alpha, Ell: p.Ell}
	switch name {
	case "linear":
		return congestlb.NewLinear(params)
	case "quadratic":
		return congestlb.NewQuadratic(params)
	case "unweighted", "unweighted_linear":
		return congestlb.NewUnweightedLinear(params)
	default:
		return nil, fmt.Errorf("family: unknown %q (want linear, quadratic or unweighted)", name)
	}
}

// parseInputs decodes '0'/'1' strings into input vectors. The strings
// are parsed directly (never round-tripped through Vector.String, which
// truncates long vectors for display).
func parseInputs(raw []string) (congestlb.Inputs, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("inputs: none given")
	}
	in := make(congestlb.Inputs, len(raw))
	for i, s := range raw {
		v := bitvec.New(len(s))
		for j := 0; j < len(s); j++ {
			switch s[j] {
			case '1':
				v.Set(j)
			case '0':
			default:
				return nil, fmt.Errorf("inputs[%d]: byte %d is %q, want '0' or '1'", i, j, s[j])
			}
		}
		in[i] = v
	}
	return in, nil
}
