// Package serve is the congestlbd service layer: a multi-tenant HTTP
// (JSON + SSE) front end over congestlb.Lab. Each tenant — identified by
// an API key — owns a private Lab with its own solve/build caches,
// solver-worker default and quotas, so no tenant can observe or perturb
// another's work; underneath the private caches one shared
// content-addressed read-through tier (congestlb.SharedSolveTier) dedups
// identical solves across tenants, so a graph any tenant already paid to
// solve costs everyone else zero branch-and-bound steps.
//
// Admission control is a channel-fed accept loop in the PipeLineExecutor
// shape: requests are admitted against a per-tenant and a global
// in-flight bound, enqueue onto a bounded channel, and run on a fixed
// pool of executor goroutines. A saturated tenant (or daemon) is turned
// away with 429 and a Retry-After header while other tenants' requests
// proceed. SIGTERM drains: new work is refused with 503, queued and
// running jobs finish, then every tenant Lab is closed via the
// concurrent-safe Lab.Close.
//
// See docs/service.md for the API reference and curl examples.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Default service limits; see Config.
const (
	DefaultMaxInflight       = 16
	DefaultMaxJobsPerTenant  = 4
	DefaultMaxDeadline       = 60 * time.Second
	DefaultRetryAfterSeconds = 1
)

// Quota bounds one tenant's resource use. The zero value means "the
// service defaults" for every field.
type Quota struct {
	// SolverWorkers pins the tenant Lab's branch-and-bound worker
	// default (0 = GOMAXPROCS at solve time). Results are deterministic
	// at any count, so this is purely a CPU-share knob.
	SolverWorkers int `json:"solver_workers,omitempty"`
	// MemoryCacheEntries bounds the tenant's private in-memory solve
	// cache (0 = the cache package default).
	MemoryCacheEntries int `json:"memory_cache_entries,omitempty"`
	// Jobs sets the tenant Lab's experiment worker-pool size used by
	// /v1/experiments (0 = GOMAXPROCS).
	Jobs int `json:"jobs,omitempty"`
	// MaxConcurrentJobs bounds the tenant's admitted-but-unfinished
	// requests; the excess gets 429 (0 = DefaultMaxJobsPerTenant).
	MaxConcurrentJobs int `json:"max_concurrent_jobs,omitempty"`
	// MaxDeadlineMS caps (and, for requests that specify none, supplies)
	// the per-request deadline → context.WithTimeout. 0 = DefaultMaxDeadline.
	MaxDeadlineMS int64 `json:"max_deadline_ms,omitempty"`
}

// maxConcurrent resolves the per-tenant in-flight bound.
func (q Quota) maxConcurrent() int {
	if q.MaxConcurrentJobs > 0 {
		return q.MaxConcurrentJobs
	}
	return DefaultMaxJobsPerTenant
}

// maxDeadline resolves the per-request deadline cap.
func (q Quota) maxDeadline() time.Duration {
	if q.MaxDeadlineMS > 0 {
		return time.Duration(q.MaxDeadlineMS) * time.Millisecond
	}
	return DefaultMaxDeadline
}

// TenantConfig declares one tenant: its name (used in metrics labels and
// job ids), the API key requests authenticate with, resource quotas and
// an optional private disk cache directory.
type TenantConfig struct {
	Name   string `json:"name"`
	APIKey string `json:"api_key"`
	Quota  Quota  `json:"quota"`
	// CacheDir, when set, attaches a persistent disk tier to the
	// tenant's private solve cache. Tenants must not share a directory —
	// cross-tenant dedup is the shared tier's job, with per-tenant
	// attribution the disk tier cannot provide.
	CacheDir string `json:"cache_dir,omitempty"`
}

// Config is the daemon configuration: the tenant set plus global
// admission limits. Zero-valued limits mean the defaults above.
type Config struct {
	Tenants []TenantConfig `json:"tenants"`
	// MaxInflight bounds admitted-but-unfinished jobs across all
	// tenants; the excess gets 429 even when the tenant's own bound has
	// room.
	MaxInflight int `json:"max_inflight,omitempty"`
	// QueueDepth bounds the accept queue between admission and the
	// executors (0 = MaxInflight). A full queue rejects like a full
	// in-flight table.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Executors is the size of the fixed goroutine pool that runs
	// admitted jobs (0 = MaxInflight).
	Executors int `json:"executors,omitempty"`
	// SharedTierEntries bounds the cross-tenant solve tier (0 = the
	// cache package default).
	SharedTierEntries int `json:"shared_tier_entries,omitempty"`
	// RetryAfterSeconds is the Retry-After hint attached to 429/503
	// responses (0 = DefaultRetryAfterSeconds).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// maxInflight resolves the global in-flight bound.
func (c Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return DefaultMaxInflight
}

// queueDepth resolves the accept-queue bound.
func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return c.maxInflight()
}

// executors resolves the executor-pool size.
func (c Config) executors() int {
	if c.Executors > 0 {
		return c.Executors
	}
	return c.maxInflight()
}

// retryAfter resolves the backpressure hint.
func (c Config) retryAfter() int {
	if c.RetryAfterSeconds > 0 {
		return c.RetryAfterSeconds
	}
	return DefaultRetryAfterSeconds
}

// Validate rejects configurations the server cannot run: no tenants,
// a tenant without a name or key, or duplicate names/keys.
func (c Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("serve: no tenants configured")
	}
	names := make(map[string]bool, len(c.Tenants))
	keys := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t.Name == "" || t.APIKey == "" {
			return fmt.Errorf("serve: tenant needs both a name and an api_key (got name=%q)", t.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("serve: duplicate tenant name %q", t.Name)
		}
		if keys[t.APIKey] {
			return fmt.Errorf("serve: duplicate api key (tenant %q)", t.Name)
		}
		names[t.Name], keys[t.APIKey] = true, true
	}
	return nil
}

// LoadConfig reads a JSON Config from path.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("serve: config: %w", err)
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("serve: config %s: %w", path, err)
	}
	return c, nil
}

// ParseTenantFlag parses the -tenant command-line shorthand
// "name:key[:max_concurrent_jobs]" into a TenantConfig.
func ParseTenantFlag(s string) (TenantConfig, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
		return TenantConfig{}, fmt.Errorf("serve: -tenant wants name:key[:max_jobs], got %q", s)
	}
	tc := TenantConfig{Name: parts[0], APIKey: parts[1]}
	if len(parts) == 3 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 1 {
			return TenantConfig{}, fmt.Errorf("serve: -tenant %q: max_jobs must be a positive integer", s)
		}
		tc.Quota.MaxConcurrentJobs = n
	}
	return tc, nil
}
