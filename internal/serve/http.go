package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// HTTPServer is a bound-and-serving HTTP listener with a graceful
// shutdown contract, shared by cmd/congestlbd and cmd/experiments so
// both binaries stop identically on SIGTERM: Shutdown stops accepting,
// waits for in-flight requests up to the grace period, then hard-closes
// whatever is left.
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when Serve returns
	err  error         // Serve's terminal error (nil after Shutdown/Close)
}

// StartHTTP binds addr (":0" picks a free port) and serves h on it in a
// background goroutine.
func StartHTTP(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: h},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *HTTPServer) Addr() net.Addr { return s.ln.Addr() }

// URL reports the server's base URL.
func (s *HTTPServer) URL() string { return "http://" + s.ln.Addr().String() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests get up to grace to finish, stragglers are closed hard. It
// returns once Serve has exited.
func (s *HTTPServer) Shutdown(grace time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		err = s.srv.Close()
	}
	<-s.done
	if err != nil {
		return err
	}
	return s.err
}
