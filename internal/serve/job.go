package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"congestlb/internal/obs"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle: queued (admitted, waiting for an executor) → running →
// done/failed. A cancelled job still lands in done when it produced a
// usable result (e.g. a deadline-cut solve returns its incumbent with
// Cancelled set) and in failed when it produced none.
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// maxJobEvents bounds the per-job progress log replayed to late SSE
// subscribers; incumbent sequences are strictly increasing, so real
// solves produce far fewer events than this.
const maxJobEvents = 4096

// Job is one admitted request: its lifecycle state, cancel handle,
// result, and the incumbent-progress log/broadcast behind the SSE
// stream. All fields behind mu; done closes when the result is final.
type Job struct {
	ID     string
	Tenant string
	Kind   string // "solve", "reduce" or "experiments"

	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	status    JobStatus
	cancelled bool
	errMsg    string
	result    json.RawMessage
	created   time.Time
	finished  time.Time
	events    []obs.ProgressEvent
	subs      map[chan obs.ProgressEvent]struct{}
}

func newJob(id, tenant, kind string, cancel context.CancelFunc) *Job {
	return &Job{
		ID:      id,
		Tenant:  tenant,
		Kind:    kind,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  JobQueued,
		created: time.Now(),
		subs:    make(map[chan obs.ProgressEvent]struct{}),
	}
}

// JobView is the wire representation of a job.
type JobView struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	Kind      string          `json:"kind"`
	Status    JobStatus       `json:"status"`
	Cancelled bool            `json:"cancelled,omitempty"`
	Error     string          `json:"error,omitempty"`
	WallMS    float64         `json:"wall_ms,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// View snapshots the job for the wire.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Tenant:    j.Tenant,
		Kind:      j.Kind,
		Status:    j.status,
		Cancelled: j.cancelled,
		Error:     j.errMsg,
		Result:    j.result,
	}
	if !j.finished.IsZero() {
		v.WallMS = float64(j.finished.Sub(j.created).Nanoseconds()) / 1e6
	}
	return v
}

// start marks the job running (an executor claimed it).
func (j *Job) start() {
	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()
}

// OnIncumbent records one progress event and fans it out to live SSE
// subscribers. It implements obs.ProgressObserver and runs inline in the
// solver's search loop, so delivery to subscribers is non-blocking: a
// slow consumer misses intermediate events (its stream stays monotone —
// any subsequence of a strictly increasing sequence is) rather than
// stalling the solve.
func (j *Job) OnIncumbent(ev obs.ProgressEvent) {
	j.mu.Lock()
	if len(j.events) < maxJobEvents {
		j.events = append(j.events, ev)
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe registers an SSE consumer: it returns a replay of the events
// so far, a live channel for subsequent ones, and an unsubscribe func.
func (j *Job) subscribe() (replay []obs.ProgressEvent, live chan obs.ProgressEvent, unsub func()) {
	ch := make(chan obs.ProgressEvent, 256)
	j.mu.Lock()
	replay = append([]obs.ProgressEvent(nil), j.events...)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// finish publishes the job's final state and releases waiters. result is
// marshalled JSON (nil on failure); cancelled marks a context-cut job.
func (j *Job) finish(result json.RawMessage, errMsg string, cancelled bool) {
	j.mu.Lock()
	if result != nil {
		j.status = JobDone
	} else {
		j.status = JobFailed
	}
	j.result = result
	j.errMsg = errMsg
	j.cancelled = cancelled
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Cancel fires the job's context. Safe to call at any time, repeatedly.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.cancelled = true
	j.mu.Unlock()
	j.cancel()
}

// maxFinishedJobs bounds how many finished jobs the table retains for
// later GET /v1/jobs/{id} inspection; the oldest are evicted first.
const maxFinishedJobs = 256

// jobTable indexes every retained job by id.
type jobTable struct {
	mu       sync.Mutex
	byID     map[string]*Job
	finished []string // eviction order
}

func newJobTable() *jobTable {
	return &jobTable{byID: make(map[string]*Job)}
}

func (t *jobTable) add(j *Job) {
	t.mu.Lock()
	t.byID[j.ID] = j
	t.mu.Unlock()
}

func (t *jobTable) get(id string) *Job {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// retire moves a finished job into the bounded retention window.
func (t *jobTable) retire(j *Job) {
	t.mu.Lock()
	t.finished = append(t.finished, j.ID)
	for len(t.finished) > maxFinishedJobs {
		delete(t.byID, t.finished[0])
		t.finished = t.finished[1:]
	}
	t.mu.Unlock()
}
