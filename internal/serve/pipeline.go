package serve

import "sync"

// task is one admitted unit of work headed for an executor.
type task struct {
	job *Job
	run func()
}

// pipeline is the channel-fed accept loop: admission pushes tasks onto a
// bounded queue and a fixed pool of executor goroutines drains it. The
// queue bound is the backpressure valve — trySubmit refuses instead of
// blocking, so a saturated daemon answers 429 immediately rather than
// holding client connections hostage. drain stops intake, lets queued
// and running tasks finish, and returns once the executors exit; that is
// the graceful half of SIGTERM handling.
type pipeline struct {
	mu     sync.Mutex
	queue  chan *task
	closed bool
	wg     sync.WaitGroup
}

func newPipeline(executors, depth int) *pipeline {
	if executors < 1 {
		executors = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &pipeline{queue: make(chan *task, depth)}
	for i := 0; i < executors; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.queue {
				t.job.start()
				t.run()
			}
		}()
	}
	return p
}

// trySubmit enqueues t unless the queue is full or the pipeline is
// draining; it never blocks.
func (p *pipeline) trySubmit(t *task) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- t:
		return true
	default:
		return false
	}
}

// depth reports how many admitted tasks are waiting for an executor.
func (p *pipeline) depth() int { return len(p.queue) }

// drain stops intake and waits for queued and running tasks to finish.
// Idempotent; concurrent callers all block until the executors exit.
func (p *pipeline) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
