package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"congestlb"
	"congestlb/internal/obs"
)

// Server is the congestlbd service: tenant registry, admission pipeline,
// job table and HTTP handlers. Build one with New, mount Handler on a
// listener (StartHTTP), and Close to drain.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	tier   *congestlb.SharedSolveTier
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	order  []string // tenant names in config order, for stable /v1/status
	jobs   *jobTable
	pipe   *pipeline
	mux    *http.ServeMux

	// inflight counts admitted-but-unfinished jobs daemon-wide.
	inflight atomic.Int64
	// draining flips when Close starts: new work gets 503.
	draining atomic.Bool

	closeMu   sync.Mutex
	closeDone chan struct{}
}

// New builds a Server from cfg: one private Lab per tenant over one
// shared solve tier, a fresh metrics registry, and the executor pool.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		reg:    obs.NewRegistry(),
		tier:   congestlb.NewSharedSolveTier(cfg.SharedTierEntries),
		byKey:  make(map[string]*Tenant, len(cfg.Tenants)),
		byName: make(map[string]*Tenant, len(cfg.Tenants)),
		jobs:   newJobTable(),
		pipe:   newPipeline(cfg.executors(), cfg.queueDepth()),
	}
	for _, tc := range cfg.Tenants {
		t, err := newTenant(tc, s.tier, s.reg)
		if err != nil {
			for _, prev := range s.byName {
				prev.Lab.Close()
			}
			return nil, err
		}
		s.byKey[tc.APIKey] = t
		s.byName[tc.Name] = t
		s.order = append(s.order, tc.Name)
	}
	s.mux = s.routes()
	return s, nil
}

// Handler returns the server's root handler: the /v1 API plus the ops
// surface (/metrics, /metrics.json, /spans.json, /debug/pprof/*) on the
// same mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry (tests and embedding
// binaries).
func (s *Server) Registry() *obs.Registry { return s.reg }

// routes wires the mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/reduce", s.handleReduce)
	mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/experiments/last", s.handleLastEnvelope)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// Ops surface: the standard obs handler, with service gauges
	// refreshed at scrape time so queue depth and in-flight counts are
	// live values, not stale increments.
	ops := obs.Handler(s.reg)
	withRefresh := func(w http.ResponseWriter, r *http.Request) {
		s.refreshGauges()
		ops.ServeHTTP(w, r)
	}
	mux.HandleFunc("/metrics", withRefresh)
	mux.HandleFunc("/metrics.json", withRefresh)
	mux.HandleFunc("/spans.json", withRefresh)
	mux.HandleFunc("/debug/pprof/", withRefresh)
	mux.HandleFunc("/debug/pprof/cmdline", withRefresh)
	mux.HandleFunc("/debug/pprof/profile", withRefresh)
	mux.HandleFunc("/debug/pprof/symbol", withRefresh)
	mux.HandleFunc("/debug/pprof/trace", withRefresh)
	return mux
}

// refreshGauges publishes the instantaneous load picture into the
// registry: global and per-tenant queue depth and in-flight counts plus
// shared-tier occupancy.
func (s *Server) refreshGauges() {
	s.reg.Gauge(obs.MServeQueueDepth).Set(int64(s.pipe.depth()))
	s.reg.Gauge(obs.MServeInflight).Set(s.inflight.Load())
	ts := s.tier.Stats()
	s.reg.Gauge(obs.MServeTierEntries).Set(int64(ts.Entries))
	s.reg.Gauge(obs.MServeTierHits).Set(int64(ts.Hits))
	for name, t := range s.byName {
		load := t.Lab.Load()
		s.reg.Gauge(obs.Labeled(obs.MServeQueueDepth, "tenant", name)).Set(int64(load.QueueDepth))
		s.reg.Gauge(obs.Labeled(obs.MServeInflight, "tenant", name)).Set(t.inflight.Load())
	}
}

// errorBody is the JSON error shape every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// tenantFor authenticates the request: Authorization: Bearer <key> or
// X-API-Key: <key>. nil means the 401 was already written.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) *Tenant {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if t, ok := s.byKey[key]; ok && key != "" {
		return t
	}
	writeError(w, http.StatusUnauthorized, "unknown or missing API key")
	return nil
}

// rejectBusy writes the backpressure response.
func (s *Server) rejectBusy(w http.ResponseWriter, code int, why string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfter()))
	writeError(w, code, "%s", why)
}

// maxBody bounds request bodies; graphs of the permitted size fit well
// within it.
const maxBody = 32 << 20

// decodeBody decodes the JSON request body into v (strictly — unknown
// fields are an error, catching typos like "dedaline_ms" before they
// silently change semantics). False means the 400 was already written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "body: %v", err)
		return false
	}
	return true
}

// effectiveDeadline resolves the job deadline from the request and the
// tenant quota: the quota caps what the request asks for and supplies
// the budget when the request is silent.
func effectiveDeadline(req jobOptions, q Quota) time.Duration {
	max := q.maxDeadline()
	if req.DeadlineMS <= 0 {
		return max
	}
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d > max {
		return max
	}
	return d
}

// submit runs the admission protocol for one parsed request and, when
// admitted, executes run on the pipeline. Sync requests block until the
// job finishes; async ones return 202 with the job id immediately.
//
// Admission order: draining → per-tenant bound → global bound → queue
// capacity. Every rejection is a 429 with Retry-After (503 when
// draining) and books the tenant's rejected counter; nothing about one
// tenant's saturation blocks another tenant's requests.
func (s *Server) submit(w http.ResponseWriter, t *Tenant, kind string, opts jobOptions, run func(ctx context.Context, job *Job) (any, error, bool)) {
	if s.draining.Load() {
		s.rejectBusy(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	t.requests.Inc()
	if n := t.inflight.Add(1); n > int64(t.quota.maxConcurrent()) {
		t.inflight.Add(-1)
		t.rejected.Inc()
		s.rejectBusy(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %s at max_concurrent_jobs (%d)", t.Name, t.quota.maxConcurrent()))
		return
	}
	if n := s.inflight.Add(1); n > int64(s.cfg.maxInflight()) {
		s.inflight.Add(-1)
		t.inflight.Add(-1)
		t.rejected.Inc()
		s.rejectBusy(w, http.StatusTooManyRequests,
			fmt.Sprintf("server at max_inflight (%d)", s.cfg.maxInflight()))
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), effectiveDeadline(opts, t.quota))
	job := newJob(fmt.Sprintf("%s-%d", t.Name, t.seq.Add(1)), t.Name, kind, cancel)
	s.jobs.add(job)
	tk := &task{job: job, run: func() {
		defer func() {
			cancel()
			t.inflight.Add(-1)
			s.inflight.Add(-1)
			s.jobs.retire(job)
		}()
		defer func() {
			// Fault containment, service edition: a panicking job fails
			// alone; the executor, the tenant and the daemon live on.
			if rec := recover(); rec != nil {
				job.finish(nil, fmt.Sprintf("panic: %v", rec), false)
			}
		}()
		res, err, cancelled := run(ctx, job)
		if err != nil {
			job.finish(nil, err.Error(), cancelled)
			return
		}
		data, merr := json.Marshal(res)
		if merr != nil {
			job.finish(nil, merr.Error(), false)
			return
		}
		job.finish(data, "", cancelled)
	}}
	if !s.pipe.trySubmit(tk) {
		cancel()
		t.inflight.Add(-1)
		s.inflight.Add(-1)
		t.rejected.Inc()
		s.jobs.retire(job)
		job.finish(nil, "rejected: accept queue full", false)
		s.rejectBusy(w, http.StatusTooManyRequests, "accept queue full")
		return
	}

	if opts.Async {
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	<-job.done
	v := job.View()
	code := http.StatusOK
	if v.Status == JobFailed {
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, v)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	g, err := req.Graph.graph()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.MaxSteps < 0 {
		writeError(w, http.StatusBadRequest, "max_steps must be non-negative")
		return
	}
	s.submit(w, t, "solve", req.jobOptions, func(ctx context.Context, job *Job) (any, error, bool) {
		return t.runSolve(ctx, g, req, job)
	})
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	var req ReduceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	fam, err := familyFrom(req.Family, req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	in, err := parseInputs(req.Inputs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submit(w, t, "reduce", req.jobOptions, func(ctx context.Context, job *Job) (any, error, bool) {
		return t.runReduce(ctx, fam, in, req, job)
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	var req ExperimentsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.submit(w, t, "experiments", req.jobOptions, func(ctx context.Context, job *Job) (any, error, bool) {
		return t.runExperiments(ctx, req, job)
	})
}

func (s *Server) handleLastEnvelope(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	env := t.getLastEnvelope()
	if env == nil {
		writeError(w, http.StatusNotFound, "tenant %s has no completed experiments run", t.Name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(env)
}

// jobFor resolves {id} tenant-scoped: a tenant can only see its own
// jobs; anything else is the same 404 an unknown id gets.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request, t *Tenant) *Job {
	id := r.PathValue("id")
	job := s.jobs.get(id)
	if job == nil || job.Tenant != t.Name {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil
	}
	return job
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	job := s.jobFor(w, r, t)
	if job == nil {
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	job := s.jobFor(w, r, t)
	if job == nil {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View())
}

// sseEvent is the wire form of one incumbent event.
type sseEvent struct {
	Weight int64 `json:"weight"`
	Steps  int64 `json:"steps"`
	Final  bool  `json:"final,omitempty"`
}

// handleJobStream serves the job's incumbent progress as Server-Sent
// Events: one "incumbent" event per improvement (strictly increasing
// weights — a Monotonic guard feeds the log) and exactly one closing
// "done" event carrying the job view once the result is final.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	job := s.jobFor(w, r, t)
	if job == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, unsub := job.subscribe()
	defer unsub()
	emit := func(ev obs.ProgressEvent) {
		data, _ := json.Marshal(sseEvent{Weight: ev.Weight, Steps: ev.Steps, Final: ev.Final})
		fmt.Fprintf(w, "event: incumbent\ndata: %s\n\n", data)
	}
	for _, ev := range replay {
		emit(ev)
	}
	fl.Flush()

	finished := false
	for !finished {
		select {
		case ev := <-live:
			emit(ev)
			fl.Flush()
		case <-job.done:
			// Drain events that raced the close before the terminator.
			for {
				select {
				case ev := <-live:
					emit(ev)
				default:
					finished = true
				}
				if finished {
					break
				}
			}
		case <-r.Context().Done():
			return
		}
	}
	data, _ := json.Marshal(job.View())
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	fl.Flush()
}

// statusTenant is one tenant's slice of the /v1/status payload.
type statusTenant struct {
	Name     string              `json:"name"`
	Inflight int64               `json:"inflight"`
	Load     congestlb.LoadStats `json:"load"`
}

// statusBody is the GET /v1/status payload.
type statusBody struct {
	Draining   bool                           `json:"draining"`
	Inflight   int64                          `json:"inflight"`
	QueueDepth int                            `json:"queue_depth"`
	SharedTier congestlb.SharedSolveTierStats `json:"shared_tier"`
	Tenants    []statusTenant                 `json:"tenants"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if t := s.tenantFor(w, r); t == nil {
		return
	}
	body := statusBody{
		Draining:   s.draining.Load(),
		Inflight:   s.inflight.Load(),
		QueueDepth: s.pipe.depth(),
		SharedTier: s.tier.Stats(),
	}
	for _, name := range s.order {
		t := s.byName[name]
		body.Tenants = append(body.Tenants, statusTenant{
			Name:     t.Name,
			Inflight: t.inflight.Load(),
			Load:     t.Lab.Load(),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// Close drains the service: new work is refused (503), queued and
// running jobs finish, then every tenant Lab is closed. The first Close
// owns the teardown and returns its result; every later or concurrent
// Close blocks until that teardown finishes, then returns
// congestlb.ErrClosed — mirroring Lab.Close's contract, so any Close
// returning means the daemon is fully drained.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closeDone != nil {
		done := s.closeDone
		s.closeMu.Unlock()
		<-done
		return congestlb.ErrClosed
	}
	s.closeDone = make(chan struct{})
	done := s.closeDone
	s.closeMu.Unlock()

	s.draining.Store(true)
	s.pipe.drain()
	var firstErr error
	for _, name := range s.order {
		if err := s.byName[name].Lab.Close(); err != nil && !errors.Is(err, congestlb.ErrClosed) && firstErr == nil {
			firstErr = err
		}
	}
	close(done)
	return firstErr
}
