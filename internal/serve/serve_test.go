package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"congestlb"
	"congestlb/internal/runner"
)

// twoTenants is the canonical test topology: alice and bob, separate
// keys, default quotas.
func twoTenants() Config {
	return Config{Tenants: []TenantConfig{
		{Name: "alice", APIKey: "ka"},
		{Name: "bob", APIKey: "kb"},
	}}
}

// testServer builds a Server over an httptest listener. Close runs at
// cleanup; tests that close explicitly just see ErrClosed there.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

// call issues one JSON request and returns the response with its body
// read and closed.
func call(t *testing.T, method, url, key, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// jobView decodes a JobView response body.
func jobView(t *testing.T, data []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("job view: %v in %s", err, data)
	}
	return v
}

// solveResult unwraps a done solve job's result payload.
func solveResult(t *testing.T, v JobView) SolveResult {
	t.Helper()
	if v.Status != JobDone {
		t.Fatalf("job %s status %s (%s), want done", v.ID, v.Status, v.Error)
	}
	var res SolveResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// pathSpec is a path graph on n unit-weight nodes — tiny, deterministic,
// solves in microseconds.
func pathSpec(n int) GraphSpec {
	s := GraphSpec{N: n}
	for i := 0; i+1 < n; i++ {
		s.Edges = append(s.Edges, [2]int{i, i + 1})
	}
	return s
}

// randSpec is a seeded G(n,p) graph with weights in 1..maxW; big enough
// n makes the exact solve slow, which is what the deadline and
// saturation tests need.
func randSpec(n int, p float64, maxW int64, seed int64) GraphSpec {
	rng := rand.New(rand.NewSource(seed))
	s := GraphSpec{N: n}
	for v := 0; v < n; v++ {
		s.Weights = append(s.Weights, 1+rng.Int63n(maxW))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				s.Edges = append(s.Edges, [2]int{u, v})
			}
		}
	}
	return s
}

func solveBody(t *testing.T, spec GraphSpec, extra string) string {
	t.Helper()
	g, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if extra != "" {
		extra = "," + extra
	}
	return fmt.Sprintf(`{"graph":%s%s}`, g, extra)
}

// TestCrossTenantSharedTier is the acceptance scenario: two tenants
// solve the identical graph and the run costs exactly one cache miss
// total, with per-tenant attribution intact.
func TestCrossTenantSharedTier(t *testing.T) {
	s, ts := testServer(t, twoTenants())
	spec := randSpec(40, 0.2, 5, 7)
	body := solveBody(t, spec, "")

	resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka", body)
	if resp.StatusCode != 200 {
		t.Fatalf("alice solve: %d %s", resp.StatusCode, data)
	}
	cold := solveResult(t, jobView(t, data))
	if cold.Cache.Misses != 1 || cold.Cache.Hits != 0 || cold.Cache.SharedHits != 0 {
		t.Fatalf("cold attribution wrong: %+v", cold.Cache)
	}
	if !cold.Optimal || cold.Weight <= 0 {
		t.Fatalf("cold solve wrong: %+v", cold)
	}

	resp, data = call(t, "POST", ts.URL+"/v1/solve", "kb", body)
	if resp.StatusCode != 200 {
		t.Fatalf("bob solve: %d %s", resp.StatusCode, data)
	}
	warm := solveResult(t, jobView(t, data))
	if warm.Cache.Misses != 0 || warm.Cache.Hits != 1 || warm.Cache.SharedHits != 1 {
		t.Fatalf("warm attribution wrong (want the shared-tier hit): %+v", warm.Cache)
	}
	if warm.Cache.StepsSolved != 0 {
		t.Fatalf("warm solve ran %d steps, want 0 (tier-served)", warm.Cache.StepsSolved)
	}
	if warm.Weight != cold.Weight {
		t.Fatalf("tenants disagree on the optimum: %d vs %d", warm.Weight, cold.Weight)
	}

	// Exactly one miss total across the daemon, and the tier holds the
	// one solution.
	if st := s.tier.Stats(); st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("tier stats %+v, want 1 entry / 1 hit", st)
	}
	if st := s.byName["alice"].Lab.SolveCacheStats(); st.Misses != 1 || st.SharedHits != 0 {
		t.Fatalf("alice lab stats %+v", st)
	}
	if st := s.byName["bob"].Lab.SolveCacheStats(); st.Misses != 0 || st.SharedHits != 1 {
		t.Fatalf("bob lab stats %+v", st)
	}
}

// TestDeadlineCutSolve: a deadline-cut solve is a done job carrying the
// incumbent with cancelled set, never a failure.
func TestDeadlineCutSolve(t *testing.T) {
	_, ts := testServer(t, twoTenants())
	body := solveBody(t, randSpec(240, 0.1, 9, 11), `"deadline_ms":150`)
	start := time.Now()
	resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka", body)
	if resp.StatusCode != 200 {
		t.Fatalf("solve: %d %s", resp.StatusCode, data)
	}
	v := jobView(t, data)
	if !v.Cancelled {
		t.Fatalf("job not flagged cancelled: %+v (solved in %v — grow the graph)", v, time.Since(start))
	}
	res := solveResult(t, v)
	if !res.Cancelled || res.Optimal {
		t.Fatalf("deadline-cut result wrong: %+v", res)
	}
	if res.Weight <= 0 || len(res.Set) == 0 {
		t.Fatalf("no incumbent returned: %+v", res)
	}
}

// TestTenantSaturation: a tenant at its concurrency bound gets 429 with
// Retry-After while the other tenant's requests still complete.
func TestTenantSaturation(t *testing.T) {
	cfg := twoTenants()
	cfg.Tenants[0].Quota.MaxConcurrentJobs = 1
	_, ts := testServer(t, cfg)

	slow := solveBody(t, randSpec(240, 0.1, 9, 13), `"async":true,"deadline_ms":30000`)
	resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka", slow)
	if resp.StatusCode != 202 {
		t.Fatalf("async admit: %d %s", resp.StatusCode, data)
	}
	id := jobView(t, data).ID

	resp, data = call(t, "POST", ts.URL+"/v1/solve", "ka", solveBody(t, pathSpec(5), ""))
	if resp.StatusCode != 429 {
		t.Fatalf("saturated tenant got %d %s, want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The other tenant is unaffected by alice's saturation.
	resp, data = call(t, "POST", ts.URL+"/v1/solve", "kb", solveBody(t, pathSpec(5), ""))
	if resp.StatusCode != 200 {
		t.Fatalf("bob got %d %s during alice's saturation", resp.StatusCode, data)
	}
	if res := solveResult(t, jobView(t, data)); res.Weight != 3 {
		t.Fatalf("path(5) optimum %d, want 3", res.Weight)
	}

	// Cancel the hog and wait for the slot to free.
	resp, _ = call(t, "DELETE", ts.URL+"/v1/jobs/"+id, "ka", "")
	if resp.StatusCode != 200 {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data = call(t, "GET", ts.URL+"/v1/jobs/"+id, "ka", "")
		v := jobView(t, data)
		if v.Status == JobDone || v.Status == JobFailed {
			if !v.Cancelled {
				t.Fatalf("cancelled job not flagged: %+v", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished after cancel: %+v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// With the slot free, alice is admitted again.
	resp, data = call(t, "POST", ts.URL+"/v1/solve", "ka", solveBody(t, pathSpec(5), ""))
	if resp.StatusCode != 200 {
		t.Fatalf("alice still rejected after cancel: %d %s", resp.StatusCode, data)
	}
}

// TestGlobalSaturation: the daemon-wide in-flight bound rejects across
// tenants once reached.
func TestGlobalSaturation(t *testing.T) {
	cfg := twoTenants()
	cfg.MaxInflight = 1
	_, ts := testServer(t, cfg)

	slow := solveBody(t, randSpec(240, 0.1, 9, 17), `"async":true,"deadline_ms":30000`)
	resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka", slow)
	if resp.StatusCode != 202 {
		t.Fatalf("admit: %d %s", resp.StatusCode, data)
	}
	id := jobView(t, data).ID
	resp, data = call(t, "POST", ts.URL+"/v1/solve", "kb", solveBody(t, pathSpec(5), ""))
	if resp.StatusCode != 429 || !strings.Contains(string(data), "max_inflight") {
		t.Fatalf("global bound: %d %s, want 429 max_inflight", resp.StatusCode, data)
	}
	call(t, "DELETE", ts.URL+"/v1/jobs/"+id, "ka", "")
}

// sseRecord is one parsed SSE frame.
type sseRecord struct {
	event string
	data  string
}

// parseSSE splits an event-stream body into frames.
func parseSSE(t *testing.T, r io.Reader) []sseRecord {
	t.Helper()
	var recs []sseRecord
	var cur sseRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				recs = append(recs, cur)
				cur = sseRecord{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestSSEStream: the job stream replays strictly increasing incumbent
// weights and terminates with exactly one done event carrying the final
// job view.
func TestSSEStream(t *testing.T) {
	_, ts := testServer(t, twoTenants())
	body := solveBody(t, randSpec(60, 0.2, 7, 19), `"async":true`)
	resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka", body)
	if resp.StatusCode != 202 {
		t.Fatalf("admit: %d %s", resp.StatusCode, data)
	}
	id := jobView(t, data).ID

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/stream", nil)
	req.Header.Set("X-API-Key", "ka")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	recs := parseSSE(t, sresp.Body)

	var weights []int64
	done := 0
	for i, rec := range recs {
		switch rec.event {
		case "incumbent":
			var ev sseEvent
			if err := json.Unmarshal([]byte(rec.data), &ev); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if !ev.Final {
				weights = append(weights, ev.Weight)
			}
		case "done":
			done++
			if i != len(recs)-1 {
				t.Fatalf("done frame %d is not last of %d", i, len(recs))
			}
			v := jobView(t, []byte(rec.data))
			if v.Status != JobDone {
				t.Fatalf("done frame carries status %s", v.Status)
			}
		default:
			t.Fatalf("unknown event %q", rec.event)
		}
	}
	if done != 1 {
		t.Fatalf("%d done events, want exactly 1", done)
	}
	if len(weights) == 0 {
		t.Fatal("no incumbent events streamed")
	}
	for i := 1; i < len(weights); i++ {
		if weights[i] <= weights[i-1] {
			t.Fatalf("incumbent weights not strictly increasing: %v", weights)
		}
	}
}

// TestJobVisibility: jobs are tenant-scoped — another tenant's id is the
// same 404 an unknown id gets.
func TestJobVisibility(t *testing.T) {
	_, ts := testServer(t, twoTenants())
	resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka", solveBody(t, pathSpec(4), ""))
	if resp.StatusCode != 200 {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	id := jobView(t, data).ID
	if resp, _ = call(t, "GET", ts.URL+"/v1/jobs/"+id, "kb", ""); resp.StatusCode != 404 {
		t.Fatalf("cross-tenant job read: %d, want 404", resp.StatusCode)
	}
	if resp, _ = call(t, "GET", ts.URL+"/v1/jobs/"+id, "ka", ""); resp.StatusCode != 200 {
		t.Fatalf("own job read: %d, want 200", resp.StatusCode)
	}
	if resp, _ = call(t, "GET", ts.URL+"/v1/jobs/nope", "ka", ""); resp.StatusCode != 404 {
		t.Fatalf("unknown job read: %d, want 404", resp.StatusCode)
	}
}

// TestAuth: missing and unknown keys are 401 on every API route; the
// ops surface stays open.
func TestAuth(t *testing.T) {
	_, ts := testServer(t, twoTenants())
	for _, key := range []string{"", "wrong"} {
		resp, _ := call(t, "POST", ts.URL+"/v1/solve", key, solveBody(t, pathSpec(3), ""))
		if resp.StatusCode != 401 {
			t.Fatalf("key %q: %d, want 401", key, resp.StatusCode)
		}
	}
	// Bearer form works too.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/status", nil)
	req.Header.Set("Authorization", "Bearer ka")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("bearer auth: %d", resp.StatusCode)
	}
	if resp, _ := call(t, "GET", ts.URL+"/healthz", "", ""); resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp, _ := call(t, "GET", ts.URL+"/metrics", "", ""); resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
}

// TestBadRequests: malformed bodies are 400 before admission ever runs.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, twoTenants())
	cases := []struct {
		path, body string
	}{
		{"/v1/solve", `{`},
		{"/v1/solve", `{"graph":{"n":0,"edges":[]}}`},
		{"/v1/solve", `{"graph":{"n":3,"edges":[[0,9]]}}`},
		{"/v1/solve", `{"graph":{"n":3,"weights":[1],"edges":[]}}`},
		{"/v1/solve", `{"graph":{"n":3,"edges":[]},"max_steps":-1}`},
		{"/v1/solve", `{"graph":{"n":3,"edges":[]},"dedaline_ms":5}`}, // typo: unknown field
		{"/v1/reduce", `{"family":"cubic","params":{"t":2,"alpha":1,"ell":3},"inputs":["0"]}`},
		{"/v1/reduce", `{"family":"linear","params":{"t":2,"alpha":1,"ell":3},"inputs":["01x"]}`},
		{"/v1/reduce", `{"family":"linear","params":{"t":2,"alpha":1,"ell":3},"inputs":[]}`},
	}
	for _, c := range cases {
		resp, data := call(t, "POST", ts.URL+c.path, "ka", c.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s %s: %d %s, want 400", c.path, c.body, resp.StatusCode, data)
		}
	}
}

// inputStrings renders input vectors in the wire's '0'/'1' form.
func inputStrings(in congestlb.Inputs) []string {
	out := make([]string, len(in))
	for i, v := range in {
		var b strings.Builder
		for j := 0; j < v.Len(); j++ {
			if v.Get(j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		out[i] = b.String()
	}
	return out
}

// TestReduce: a full Theorem 5 reduction over the wire, with the gap
// audit cross-checking the reported optimum.
func TestReduce(t *testing.T) {
	_, ts := testServer(t, twoTenants())
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := ReduceRequest{
		Family:    "linear",
		Params:    ParamsSpec{T: 2, Alpha: 1, Ell: 3},
		Inputs:    inputStrings(in),
		Config:    CongestSpec{Seed: 1},
		VerifyGap: true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := call(t, "POST", ts.URL+"/v1/reduce", "ka", string(body))
	if resp.StatusCode != 200 {
		t.Fatalf("reduce: %d %s", resp.StatusCode, data)
	}
	v := jobView(t, data)
	if v.Status != JobDone {
		t.Fatalf("reduce job %s: %s", v.Status, v.Error)
	}
	var res ReduceResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Family, "linear") || res.Players != 2 {
		t.Fatalf("report header wrong: %+v", res)
	}
	if !res.AccountingHolds {
		t.Fatalf("accounting violated: %+v", res)
	}
	if !res.Correct {
		t.Fatalf("decision %v != truth %v", res.Decision, res.Truth)
	}
	if res.GapOpt == nil || *res.GapOpt != res.Opt {
		t.Fatalf("gap audit disagrees: %+v vs opt %d", res.GapOpt, res.Opt)
	}
}

// TestExperimentsAndLastEnvelope: the experiments endpoint produces a v7
// envelope, re-served bare (and tenant-scoped) by /v1/experiments/last.
func TestExperimentsAndLastEnvelope(t *testing.T) {
	_, ts := testServer(t, twoTenants())

	// Before any run, last is a 404.
	resp, _ := call(t, "GET", ts.URL+"/v1/experiments/last", "ka", "")
	if resp.StatusCode != 404 {
		t.Fatalf("premature last envelope: %d", resp.StatusCode)
	}

	resp, data := call(t, "POST", ts.URL+"/v1/experiments", "ka", `{"ids":["lemma1"],"report":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("experiments: %d %s", resp.StatusCode, data)
	}
	v := jobView(t, data)
	if v.Status != JobDone {
		t.Fatalf("experiments job %s: %s", v.Status, v.Error)
	}
	var res ExperimentsResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Envelope.Schema != runner.Schema {
		t.Fatalf("envelope schema %q, want %q", res.Envelope.Schema, runner.Schema)
	}
	if res.Envelope.OK != 1 || len(res.Envelope.Experiments) != 1 {
		t.Fatalf("envelope wrong: %+v", res.Envelope)
	}
	if res.Report == "" {
		t.Fatal("report requested but absent")
	}

	resp, data = call(t, "GET", ts.URL+"/v1/experiments/last", "ka", "")
	if resp.StatusCode != 200 {
		t.Fatalf("last envelope: %d", resp.StatusCode)
	}
	var env runner.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Schema != runner.Schema || env.OK != 1 {
		t.Fatalf("re-served envelope wrong: schema %q ok %d", env.Schema, env.OK)
	}

	// bob never ran experiments; his last is still a 404.
	resp, _ = call(t, "GET", ts.URL+"/v1/experiments/last", "kb", "")
	if resp.StatusCode != 404 {
		t.Fatalf("cross-tenant last envelope: %d, want 404", resp.StatusCode)
	}
}

// TestMetricsSurface: the ops endpoint renders the service gauges and
// the tenant-labeled counters in Prometheus form. Zero-valued series are
// elided by the registry snapshot, so the test arranges real load: one
// executor, two admitted slow jobs — one running (inflight), one waiting
// (queue depth).
func TestMetricsSurface(t *testing.T) {
	cfg := twoTenants()
	cfg.Executors = 1
	cfg.QueueDepth = 4
	_, ts := testServer(t, cfg)
	call(t, "POST", ts.URL+"/v1/solve", "kb", solveBody(t, pathSpec(4), ""))

	slow := `"async":true,"deadline_ms":30000`
	var ids []string
	for seed := int64(31); seed <= 32; seed++ {
		resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka", solveBody(t, randSpec(240, 0.1, 9, seed), slow))
		if resp.StatusCode != 202 {
			t.Fatalf("admit: %d %s", resp.StatusCode, data)
		}
		ids = append(ids, jobView(t, data).ID)
	}

	// The lone executor claims the first job quickly but asynchronously;
	// poll until the queue settles at exactly the one waiting job.
	var body string
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data := call(t, "GET", ts.URL+"/metrics", "", "")
		if resp.StatusCode != 200 {
			t.Fatalf("metrics: %d", resp.StatusCode)
		}
		body = string(data)
		if strings.Contains(body, "congestlb_serve_queue_depth 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never settled at 1:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"congestlb_serve_inflight_jobs 2",
		"congestlb_serve_shared_tier_entries 1",
		`congestlb_serve_requests_total{tenant="alice"} 2`,
		`congestlb_serve_requests_total{tenant="bob"} 1`,
		`congestlb_serve_inflight_jobs{tenant="alice"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	for _, id := range ids {
		call(t, "DELETE", ts.URL+"/v1/jobs/"+id, "ka", "")
	}
}

// TestStatusEndpoint: /v1/status reports every tenant's load in config
// order plus the shared-tier picture.
func TestStatusEndpoint(t *testing.T) {
	_, ts := testServer(t, twoTenants())
	call(t, "POST", ts.URL+"/v1/solve", "ka", solveBody(t, pathSpec(4), ""))
	resp, data := call(t, "GET", ts.URL+"/v1/status", "kb", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var body statusBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Draining || body.Inflight != 0 {
		t.Fatalf("status %+v", body)
	}
	if len(body.Tenants) != 2 || body.Tenants[0].Name != "alice" || body.Tenants[1].Name != "bob" {
		t.Fatalf("tenants wrong: %+v", body.Tenants)
	}
	if body.SharedTier.Entries != 1 {
		t.Fatalf("tier entries %d, want 1", body.SharedTier.Entries)
	}
}

// TestDrain: during Close new work gets 503, admitted work finishes, and
// the job table stays readable.
func TestDrain(t *testing.T) {
	s, ts := testServer(t, twoTenants())

	resp, data := call(t, "POST", ts.URL+"/v1/solve", "ka",
		solveBody(t, randSpec(120, 0.15, 5, 29), `"async":true,"deadline_ms":2000`))
	if resp.StatusCode != 202 {
		t.Fatalf("admit: %d %s", resp.StatusCode, data)
	}
	id := jobView(t, data).ID

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// The draining flag flips before the drain completes; new work is
	// refused while the admitted job is still allowed to finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data = call(t, "POST", ts.URL+"/v1/solve", "ka", solveBody(t, pathSpec(3), ""))
		if resp.StatusCode == 503 {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never refused new work: last %d %s", resp.StatusCode, data)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	resp, data = call(t, "GET", ts.URL+"/v1/jobs/"+id, "ka", "")
	v := jobView(t, data)
	if resp.StatusCode != 200 || (v.Status != JobDone && v.Status != JobFailed) {
		t.Fatalf("admitted job after drain: %d %+v", resp.StatusCode, v)
	}
	if v.Status == JobDone && v.Result == nil {
		t.Fatalf("drained job has no result: %+v", v)
	}
}

// TestConcurrentClose: racing Closes — exactly one owner returns nil,
// the rest observe ErrClosed only after the teardown finished.
func TestConcurrentClose(t *testing.T) {
	s, _ := testServer(t, twoTenants())
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- s.Close() }()
	}
	var nilCount, closedCount int
	for i := 0; i < 2; i++ {
		switch err := <-errs; {
		case err == nil:
			nilCount++
		case errors.Is(err, congestlb.ErrClosed):
			closedCount++
		default:
			t.Fatalf("unexpected close error: %v", err)
		}
	}
	if nilCount != 1 || closedCount != 1 {
		t.Fatalf("close results: %d nil / %d ErrClosed, want 1/1", nilCount, closedCount)
	}
	// And a third, after the fact, is ErrClosed immediately.
	if err := s.Close(); !errors.Is(err, congestlb.ErrClosed) {
		t.Fatalf("late close: %v", err)
	}
}

// TestConfigValidate covers the config error surface New refuses.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Tenants: []TenantConfig{{Name: "", APIKey: "k"}}},
		{Tenants: []TenantConfig{{Name: "a", APIKey: ""}}},
		{Tenants: []TenantConfig{{Name: "a", APIKey: "k"}, {Name: "a", APIKey: "k2"}}},
		{Tenants: []TenantConfig{{Name: "a", APIKey: "k"}, {Name: "b", APIKey: "k"}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestParseTenantFlag covers the -tenant shorthand.
func TestParseTenantFlag(t *testing.T) {
	tc, err := ParseTenantFlag("alice:ka:3")
	if err != nil || tc.Name != "alice" || tc.APIKey != "ka" || tc.Quota.MaxConcurrentJobs != 3 {
		t.Fatalf("parse: %+v %v", tc, err)
	}
	if _, err := ParseTenantFlag("alice"); err == nil {
		t.Fatal("keyless shorthand accepted")
	}
	if _, err := ParseTenantFlag("alice:ka:zero"); err == nil {
		t.Fatal("non-numeric max_jobs accepted")
	}
}
