package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"congestlb"
	"congestlb/internal/obs"
)

// Tenant is one API-key principal: a private Lab (own solve/build
// caches, solver-worker default, experiment pool) plus quota state. The
// only thing tenants share is the server's read-through solve tier —
// results, never failures, cancellations or cache pressure.
type Tenant struct {
	Name  string
	key   string
	Lab   *congestlb.Lab
	quota Quota

	// inflight counts admitted-but-unfinished jobs; admission bounds it
	// by quota.maxConcurrent.
	inflight atomic.Int64
	// seq numbers this tenant's jobs.
	seq atomic.Int64

	// requests/rejected are the tenant-labeled admission counters in the
	// server registry.
	requests *obs.Counter
	rejected *obs.Counter

	// lastEnvelope is the tenant's most recent completed experiments
	// envelope, served bare by GET /v1/experiments/last for benchjson.
	envMu        sync.Mutex
	lastEnvelope json.RawMessage
}

// newTenant builds the tenant's private Lab over the shared tier and
// interns its labeled counters.
func newTenant(cfg TenantConfig, tier *congestlb.SharedSolveTier, reg *obs.Registry) (*Tenant, error) {
	opts := []congestlb.Option{
		congestlb.WithSharedSolveTier(tier),
		congestlb.WithSolverWorkers(cfg.Quota.SolverWorkers),
		congestlb.WithMemoryCacheSize(cfg.Quota.MemoryCacheEntries),
		congestlb.WithJobs(cfg.Quota.Jobs),
	}
	if cfg.CacheDir != "" {
		opts = append(opts, congestlb.WithSolveCacheDir(cfg.CacheDir))
	}
	lab, err := congestlb.New(opts...)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s: %w", cfg.Name, err)
	}
	return &Tenant{
		Name:     cfg.Name,
		key:      cfg.APIKey,
		Lab:      lab,
		quota:    cfg.Quota,
		requests: reg.Counter(obs.Labeled(obs.MServeRequests, "tenant", cfg.Name)),
		rejected: reg.Counter(obs.Labeled(obs.MServeRejected, "tenant", cfg.Name)),
	}, nil
}

// setLastEnvelope stores the marshalled envelope of a completed
// experiments run.
func (t *Tenant) setLastEnvelope(data json.RawMessage) {
	t.envMu.Lock()
	t.lastEnvelope = data
	t.envMu.Unlock()
}

// getLastEnvelope returns the stored envelope (nil when no run finished
// yet).
func (t *Tenant) getLastEnvelope() json.RawMessage {
	t.envMu.Lock()
	defer t.envMu.Unlock()
	return t.lastEnvelope
}

// ctxCut reports whether err is the job context firing (deadline or
// cancel) — the cases where a partial result is the contract, not a
// failure.
func ctxCut(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runSolve executes a solve job: the graph solves through the tenant's
// private session (exact per-request attribution) with incumbent
// progress streamed into the job's event log. A context-cut solve is
// still a done job: the incumbent is a valid independent set, returned
// with Cancelled set.
func (t *Tenant) runSolve(ctx context.Context, g *congestlb.Graph, req SolveRequest, job *Job) (any, error, bool) {
	guard := obs.NewMonotonic(job)
	sess := t.Lab.NewSolveSession().WithContext(ctx).WithProgress(guard)
	sol, err := sess.Exact(g, congestlb.SolverOptions{
		MaxSteps:   req.MaxSteps,
		WeightOnly: req.WeightOnly,
	})
	guard.Finish(sol.Weight, sol.Steps)
	cancelled := err != nil && ctxCut(err)
	if err != nil && !cancelled {
		return nil, err, false
	}
	return SolveResult{
		Weight:    sol.Weight,
		Set:       sol.Set,
		Optimal:   sol.Optimal && !cancelled,
		Steps:     sol.Steps,
		Cancelled: cancelled,
		Cache:     sess.Stats(),
	}, nil, cancelled
}

// runReduce executes a reduce job: RunReduction through the tenant Lab,
// optionally followed by the VerifyGap audit.
func (t *Tenant) runReduce(ctx context.Context, fam congestlb.Family, in congestlb.Inputs, req ReduceRequest, job *Job) (any, error, bool) {
	cfg := congestlb.CongestConfig{
		BandwidthBits: req.Config.BandwidthBits,
		MaxRounds:     req.Config.MaxRounds,
		Seed:          req.Config.Seed,
		Parallel:      req.Config.Parallel,
		Workers:       req.Config.Workers,
	}
	report, err := t.Lab.RunReduction(ctx, fam, in, cfg)
	if err != nil {
		return nil, err, ctxCut(err)
	}
	res := ReduceResult{
		Family:           report.Family,
		Players:          report.Players,
		N:                report.N,
		CutSize:          report.CutSize,
		Bandwidth:        report.Bandwidth,
		Rounds:           report.Rounds,
		BlackboardBits:   report.BlackboardBits,
		BlackboardWrites: report.BlackboardWrites,
		CongestTotalBits: report.CongestTotalBits,
		AccountingBound:  report.AccountingBound,
		AccountingHolds:  report.AccountingHolds(),
		Opt:              report.Opt,
		Decision:         report.Decision,
		Truth:            report.Truth,
		Correct:          report.Correct(),
		SolveCacheHits:   report.SolveCacheHits,
		SolveCacheMisses: report.SolveCacheMisses,
	}
	if req.VerifyGap {
		opt, err := t.Lab.VerifyGap(ctx, fam, in)
		if err != nil {
			return nil, fmt.Errorf("verify gap: %w", err), ctxCut(err)
		}
		res.GapOpt = &opt
	}
	return res, nil, false
}

// runExperiments executes an experiments job through the tenant Lab's
// worker pool and records the envelope for GET /v1/experiments/last.
func (t *Tenant) runExperiments(ctx context.Context, req ExperimentsRequest, job *Job) (any, error, bool) {
	var buf strings.Builder
	env, err := t.Lab.RunExperiments(ctx, req.IDs, &buf)
	if err != nil {
		return nil, err, ctxCut(err)
	}
	if data, merr := json.Marshal(env); merr == nil {
		t.setLastEnvelope(data)
	}
	res := ExperimentsResult{Envelope: env}
	if req.Report {
		res.Report = buf.String()
	}
	// A cancellation that fired mid-suite still yields a complete
	// envelope (unfinished experiments are recorded cancelled), so the
	// job is done, flagged cancelled when anything was cut.
	return res, nil, env.Cancelled > 0
}
