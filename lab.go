package congestlb

// Lab is the library's service handle: an instantiable, context-aware
// replacement for the old process-wide configuration globals. Each Lab owns
// its own exact-solve cache (with an optional persistent disk tier), its
// own lower-bound-graph build cache, its own branch-and-bound worker
// default and its own experiment worker pool — two Labs in one process
// share nothing, so a server can host isolated tenants, A/B configurations
// or concurrent workloads without any cross-talk, and every long-running
// operation takes a context.Context that cancels it cooperatively.
//
// The old package-level Set*/Shared* functions and long-running free
// functions remain as deprecated thin wrappers over a lazily-created
// default Lab backed by the process-wide shared caches, so existing code
// keeps its exact behaviour. See docs/api.md for the lifecycle, the full
// option set, the deprecation map and the isolation guarantees.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"congestlb/internal/core"
	"congestlb/internal/experiments"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
	"congestlb/internal/obs"
	"congestlb/internal/runner"
)

// ProgressEvent is one incumbent improvement streamed from an exact
// solve (see WithObserver and Lab.WatchSolve).
type ProgressEvent = obs.ProgressEvent

// ProgressObserver receives incumbent improvements; ObserverFunc adapts
// a plain function to it.
type ProgressObserver = obs.ProgressObserver
type ObserverFunc = obs.ObserverFunc

// MetricsSnapshot is a point-in-time copy of a Lab's metrics registry
// (Lab.Metrics); SpanStat summarises completed spans by name. Both also
// appear in the v6 experiment envelope.
type MetricsSnapshot = obs.Snapshot

// SpanStat aggregates completed spans sharing a name.
type SpanStat = obs.SpanStat

// Experiment is one registered reproduction experiment (see RunExperiments
// and cmd/experiments).
type Experiment = experiments.Experiment

// ExperimentEnvelope is the structured JSON result of one RunExperiments
// call (schema v4): one record per experiment plus run-level cache and
// timing totals.
type ExperimentEnvelope = runner.Envelope

// ExperimentResult is one experiment's record in an ExperimentEnvelope.
type ExperimentResult = runner.ExperimentResult

// AllExperiments returns every registered experiment in ID order.
func AllExperiments() []Experiment { return experiments.All() }

// Lab is a self-contained instance of the library's services. The zero
// value is not usable; create Labs with New (isolated) or use DefaultLab
// (the shared-state instance behind the deprecated package-level API).
//
// Isolation guarantees: a Lab created by New owns a private solve cache,
// private disk tier (if configured), private build cache, private solver
// worker default and private scheduler pool. No operation on one Lab can
// observe or mutate another Lab's state; in particular two Labs with
// different solve-cache directories never cross-populate. The only state
// Labs inherently share is the process itself (GOMAXPROCS, memory).
//
// Every potentially long-running method takes a context.Context:
// cancellation stops CONGEST round loops at round boundaries, queued
// experiment/instance jobs before they start, and in-flight
// branch-and-bound on the solver's batched step cadence — returning the
// best incumbent found together with ctx.Err(), exactly like a step-budget
// exhaustion, so cancellation never produces a torn result. Graph
// construction is the one stage that is not interruptible mid-build: a
// dead context is observed before a build starts, never inside one.
//
// A Lab is safe for concurrent use. Close releases its worker pool and
// detaches its disk tier; a closed Lab rejects RunExperiments but its
// pure solve/simulate methods keep working.
// ErrClosed is returned by Lab operations that require an open Lab —
// RunExperiments, SetSolveCacheDir, and any Close after the first. Pure
// solve/simulate methods keep working on a closed Lab and never return
// it.
var ErrClosed = errors.New("congestlb: Lab is closed")

type Lab struct {
	// solve/builds are nil on the default Lab, which resolves to the
	// process-wide shared instances at call time (preserving the exact
	// semantics of the deprecated globals, including SetEnabled gates).
	solve  *cache.Cache
	builds *lbgraph.BuildCache
	// def marks the default Lab: its solver-worker setting delegates to
	// the mis package default so programs constructed without a session
	// agree with it, exactly as the deprecated SetSolverWorkers did.
	def bool

	// reg is the Lab's metrics registry (nil unless WithMetrics): the
	// solve/build caches, scheduler, engines and spans all record into
	// it. progress is the observer every solve session fires on incumbent
	// improvements — the WithObserver callback teed with the registry's
	// incumbent bookkeeping; nil when neither is configured, which is the
	// branch-cheap hot-path default. Both are set at New and never
	// mutated, so they are read without the mutex.
	reg      *obs.Registry
	progress obs.ProgressObserver

	mu            sync.Mutex
	idle          *sync.Cond // signalled when active drops to zero
	workers       int
	jobs          int
	buildCacheOff bool
	sched         *experiments.Scheduler
	active        int // in-flight RunExperiments calls; Close waits for zero
	closed        bool
	// closeDone is non-nil once a Close has taken ownership of the
	// teardown and closed when that teardown finished — every other Close
	// call blocks on it, so no caller returns before the pool is drained.
	closeDone chan struct{}
}

// labConfig accumulates functional options.
type labConfig struct {
	workers    int
	jobs       int
	memEntries int
	cacheDir   string
	buildCache bool
	metrics    bool
	observer   obs.ProgressObserver
	sharedTier *cache.SharedTier
}

// Option configures a Lab at construction time.
type Option func(*labConfig)

// WithSolverWorkers sets the Lab's branch-and-bound worker default, applied
// to every exact solve that does not pin SolverOptions.Workers itself
// (0 = GOMAXPROCS at solve time). Results are deterministic at any count.
func WithSolverWorkers(n int) Option {
	return func(c *labConfig) {
		if n < 0 {
			n = 0
		}
		c.workers = n
	}
}

// WithSolveCacheDir attaches a persistent on-disk tier to the Lab's solve
// cache: content-identical solves in later processes (or other Labs
// pointed at the same directory) are served from disk instead of re-running
// branch-and-bound. The directory is created if missing; Close detaches it.
func WithSolveCacheDir(dir string) Option {
	return func(c *labConfig) { c.cacheDir = dir }
}

// WithMemoryCacheSize bounds the Lab's in-memory solve cache to the given
// number of entries (0 = the package default). Solutions are small, so the
// default comfortably covers whole experiment suites.
func WithMemoryCacheSize(entries int) Option {
	return func(c *labConfig) { c.memEntries = entries }
}

// SharedSolveTier is a content-addressed store of completed solve
// results shared by several Labs: each Lab's private cache consults it
// before booking a miss, so an identical solve any sibling Lab already
// paid for is served with zero branch-and-bound steps (booked as a
// shared hit, see SolveCacheStats.SharedHits). Private caches stay
// private — the tier holds only finished, error-free solutions, never
// in-flight state, so one Lab's cancellation or failure semantics cannot
// leak into another's. This is the cross-tenant dedup layer of the
// congestlbd service.
type SharedSolveTier = cache.SharedTier

// SharedSolveTierStats is a snapshot of a SharedSolveTier's counters.
type SharedSolveTierStats = cache.SharedTierStats

// NewSharedSolveTier returns an empty cross-Lab solve tier bounded to
// the given number of solutions (0 = the package default). Attach it to
// Labs at construction with WithSharedSolveTier.
func NewSharedSolveTier(entries int) *SharedSolveTier {
	return cache.NewSharedTier(entries)
}

// WithSharedSolveTier places the Lab's private solve cache on top of a
// cross-Lab read-through tier (see SharedSolveTier). Multiple Labs may
// share one tier; nil means no tier (the default).
func WithSharedSolveTier(t *SharedSolveTier) Option {
	return func(c *labConfig) { c.sharedTier = t }
}

// WithBuildCache switches the Lab's lower-bound-graph build cache on or
// off (on by default). Builds are deterministic, so the cache is
// semantically transparent; off exists for A/B measurements.
func WithBuildCache(on bool) Option {
	return func(c *labConfig) { c.buildCache = on }
}

// WithJobs sets the Lab's experiment worker-pool size used by
// RunExperiments (0 = GOMAXPROCS). The pool is created lazily on first use
// and lives until Close.
func WithJobs(n int) Option {
	return func(c *labConfig) {
		if n < 0 {
			n = 0
		}
		c.jobs = n
	}
}

// WithMetrics attaches a per-Lab metrics registry (off by default).
// When on, the Lab's solve and build caches, its scheduler, the CONGEST
// engines and the exact solvers record counters, gauges, bounded
// histograms and spans into it; Lab.Metrics snapshots it,
// Lab.MetricsHandler serves it over HTTP, and RunExperiments embeds the
// per-run delta in the envelope (schema v6). Observability is
// non-perturbing: reports, solutions and determinism guarantees are
// byte-identical with it on or off. When off (the default) every
// recording site short-circuits on a nil handle, so the hot paths pay
// nothing. See docs/observability.md.
func WithMetrics(on bool) Option {
	return func(c *labConfig) { c.metrics = on }
}

// WithObserver streams every incumbent improvement of every exact solve
// the Lab runs (both solver engines fire it; strict improvements only)
// to o. The observer must be safe for concurrent use and return
// quickly — it runs inline in the solver's search loop. For a
// per-solve, strictly-monotone stream with a termination marker, use
// Lab.WatchSolve instead.
func WithObserver(o ProgressObserver) Option {
	return func(c *labConfig) { c.observer = o }
}

// New creates an isolated Lab from the given options. The returned Lab
// shares no mutable state with any other Lab or with the deprecated
// package-level API; callers that use RunExperiments should Close it when
// done to release its worker pool.
func New(opts ...Option) (*Lab, error) {
	cfg := labConfig{buildCache: true}
	for _, o := range opts {
		o(&cfg)
	}
	l := &Lab{
		solve:   cache.New(cfg.memEntries),
		workers: cfg.workers,
		jobs:    cfg.jobs,
	}
	if cfg.buildCache {
		l.builds = lbgraph.NewBuildCache(0)
	} else {
		l.buildCacheOff = true
	}
	if cfg.metrics {
		l.reg = obs.NewRegistry()
		l.solve.SetRegistry(l.reg)
		if l.builds != nil {
			l.builds.SetRegistry(l.reg)
		}
	}
	if cfg.sharedTier != nil {
		l.solve.SetSharedTier(cfg.sharedTier)
	}
	l.progress = obs.Tee(cfg.observer, l.reg.IncumbentObserver())
	if cfg.cacheDir != "" {
		if err := l.solve.SetDir(cfg.cacheDir, 0); err != nil {
			return nil, fmt.Errorf("congestlb: solve cache dir: %w", err)
		}
	}
	return l, nil
}

// defaultLab is the lazily-created Lab behind the deprecated package-level
// API: nil solve/builds resolve to the process-wide shared caches, and its
// worker setting delegates to the mis package default — so the wrappers
// behave exactly as the globals they replace.
var (
	defaultLabOnce sync.Once
	defaultLabInst *Lab
)

// DefaultLab returns the process-wide Lab the deprecated package-level
// functions delegate to. It is backed by the shared caches (so legacy code
// and DefaultLab users observe one coherent state) and must not be Closed.
// New code should create its own Lab with New.
func DefaultLab() *Lab {
	defaultLabOnce.Do(func() {
		defaultLabInst = &Lab{def: true}
	})
	return defaultLabInst
}

// solveCache resolves the Lab's solve cache (shared for the default Lab).
func (l *Lab) solveCache() *cache.Cache {
	if l.solve == nil {
		return cache.Shared()
	}
	return l.solve
}

// buildCache resolves the Lab's build cache (shared for the default Lab;
// nil when the Lab was configured with WithBuildCache(false)).
func (l *Lab) buildCache() *lbgraph.BuildCache {
	if l.def {
		return lbgraph.SharedBuildCache()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.builds
}

// solveSession builds a ctx-bound attributed session over the Lab's solve
// cache, stamping the Lab's solver-worker default onto solves. On an
// observed Lab the context carries the registry (so solves open spans
// and record latency) and the session's solves fire the Lab's progress
// observer.
func (l *Lab) solveSession(ctx context.Context) *cache.Session {
	if l.reg != nil {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx = obs.NewContext(ctx, l.reg)
	}
	s := cache.NewSession(l.solve, l.sessionWorkers()).WithContext(ctx)
	if l.progress != nil {
		s = s.WithProgress(l.progress)
	}
	return s
}

// sessionWorkers is the worker count stamped onto session solves: the
// default Lab stamps nothing (0) so the mis package default keeps
// resolving at solve time, exactly like the legacy path. Isolated Labs
// with no explicit setting pin GOMAXPROCS here instead of leaving 0,
// because 0 would fall through to the mutable process-wide mis default at
// solve time — another tenant's (or legacy code's) SetSolverWorkers could
// silently reconfigure this Lab, breaking the share-nothing guarantee.
func (l *Lab) sessionWorkers() int {
	if l.def {
		return 0
	}
	l.mu.Lock()
	w := l.workers
	l.mu.Unlock()
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// newBuildSession builds an attributed session over the Lab's build cache.
func (l *Lab) newBuildSession() *lbgraph.CacheSession {
	if l.def {
		return lbgraph.NewCacheSession(nil)
	}
	l.mu.Lock()
	off, builds := l.buildCacheOff, l.builds
	l.mu.Unlock()
	if off {
		return lbgraph.NewUncachedCacheSession()
	}
	return lbgraph.NewCacheSession(builds)
}

// SetSolverWorkers sets the Lab's branch-and-bound worker default and
// returns the previous setting (0 = GOMAXPROCS at solve time). On the
// default Lab this is the process-wide default, as the deprecated
// package-level SetSolverWorkers always was.
func (l *Lab) SetSolverWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if l.def {
		return mis.SetDefaultWorkers(n)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.workers
	l.workers = n
	return prev
}

// SolverWorkers reports the Lab's current worker default (0 = GOMAXPROCS
// at solve time).
func (l *Lab) SolverWorkers() int {
	if l.def {
		return mis.DefaultWorkers()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.workers
}

// SetSolveCacheDir attaches (or, with "", detaches) the persistent disk
// tier of this Lab's solve cache. Unlike the deprecated global, this can
// never smear configuration across tenants: only this Lab's solves are
// affected. A closed Lab refuses re-attachment — Close's detach is final,
// so a caller may delete the directory after Close returns.
func (l *Lab) SetSolveCacheDir(dir string) error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return l.solveCache().SetDir(dir, 0)
}

// SolveCacheDir reports the Lab's attached disk-tier directory ("" when
// none).
func (l *Lab) SolveCacheDir() string { return l.solveCache().DiskDir() }

// SolveCacheStats snapshots the Lab's solve-cache counters.
func (l *Lab) SolveCacheStats() SolveCacheStats { return l.solveCache().Stats() }

// BuildCacheStats snapshots the Lab's build-cache counters (zero when the
// Lab was configured with WithBuildCache(false)).
func (l *Lab) BuildCacheStats() BuildCacheStats {
	c := l.buildCache()
	if c == nil {
		return BuildCacheStats{}
	}
	return c.Stats()
}

// Metrics snapshots the Lab's metrics registry: every counter, gauge
// and histogram its caches, scheduler, engines and solvers have
// recorded so far. On a Lab without WithMetrics the snapshot is empty.
// Values are cumulative over the Lab's lifetime; diff two snapshots
// (MetricsSnapshot.DeltaSince) to scope a window.
func (l *Lab) Metrics() MetricsSnapshot { return l.reg.Snapshot() }

// SpanStats summarises the spans the Lab has completed since the
// beginning of its lifetime, by name (nil without WithMetrics).
func (l *Lab) SpanStats() []SpanStat { return l.reg.SpanStatsSince(0) }

// MetricsHandler returns an HTTP handler exposing the Lab's registry —
// Prometheus text at /metrics, JSON snapshots at /metrics.json and
// /spans.json, and the pprof profiles under /debug/pprof/ — or nil on a
// Lab without WithMetrics. cmd/experiments serves it via -metrics-addr.
func (l *Lab) MetricsHandler() http.Handler { return obs.Handler(l.reg) }

// SetBuildCacheEnabled switches the Lab's build cache on or off and
// returns the previous setting. On the default Lab this is the
// process-wide lbgraph switch, preserving the deprecated global's scope.
func (l *Lab) SetBuildCacheEnabled(on bool) bool {
	if l.def {
		return lbgraph.SetCacheEnabled(on)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := !l.buildCacheOff
	l.buildCacheOff = !on
	if on && l.builds == nil {
		l.builds = lbgraph.NewBuildCache(0)
		l.builds.SetRegistry(l.reg)
	}
	return prev
}

// NewSolveSession returns an attributed view of the Lab's solve cache that
// counts exactly the traffic routed through it and stamps the Lab's solver
// worker default onto its solves.
func (l *Lab) NewSolveSession() *SolveSession {
	return cache.NewSession(l.solve, l.sessionWorkers())
}

// NewBuildSession returns an attributed view of the Lab's build cache.
func (l *Lab) NewBuildSession() *BuildSession { return l.newBuildSession() }

// labBuilder is implemented by the concrete families (Linear, Quadratic,
// UnweightedLinear): Build with the construction routed through an
// attributed build-cache session. Families without it (external Family
// implementations) fall back to their own Build.
type labBuilder interface {
	BuildWith(*lbgraph.CacheSession, Inputs) (Instance, error)
}

// buildInstance constructs G_x̄ through the Lab's build cache when the
// family supports attribution, else through the family directly.
func (l *Lab) buildInstance(fam Family, in Inputs) (Instance, error) {
	if fb, ok := fam.(labBuilder); ok {
		return fb.BuildWith(l.newBuildSession(), in)
	}
	return fam.Build(in)
}

// BuildInstance constructs and validates an instance for a family and
// input through this Lab's build cache — the Lab counterpart of the
// package-level BuildInstance, which routes through the process-wide
// shared cache. Use this form when the instance feeds the Lab's other
// methods, so build traffic books (and memoises) inside the Lab.
func (l *Lab) BuildInstance(fam Family, in Inputs) (Instance, error) {
	inst, err := l.buildInstance(fam, in)
	if err != nil {
		return Instance{}, fmt.Errorf("congestlb: building %s: %w", fam.Name(), err)
	}
	if err := inst.Graph.Validate(); err != nil {
		return Instance{}, fmt.Errorf("congestlb: built graph invalid: %w", err)
	}
	return inst, nil
}

// RunReduction executes the Theorem 5 simulation with the standard
// gossip-and-solve-exactly CONGEST algorithm through this Lab's caches:
// it builds G_x̄, runs the algorithm, charges every cut-crossing message to
// a blackboard, decides promise pairwise disjointness via the gap
// predicate and reports the full accounting. Cancelling ctx stops the
// round loop at a round boundary (or an in-flight local solve on its step
// cadence) and returns the context's error.
func (l *Lab) RunReduction(ctx context.Context, fam Family, in Inputs, cfg CongestConfig) (SimulationReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return SimulationReport{}, err
	}
	inst, err := l.buildInstance(fam, in)
	if err != nil {
		return SimulationReport{}, fmt.Errorf("core: build: %w", err)
	}
	sess := l.solveSession(ctx)
	report, err := core.SimulateBuiltCtx(ctx, fam, in, inst, core.GossipProgramsWith(sess), core.GossipOpt, cfg)
	if err != nil {
		return report, err
	}
	// The report's cache counters default to process-wide shared-cache
	// deltas (see SimulationReport), which are meaningless for a Lab
	// routing its solves through a private cache — and could even pick up
	// a concurrent tenant's traffic. The per-call session counted exactly
	// this run's lookups, so report the exact numbers instead.
	st := sess.Stats()
	report.SolveCacheHits, report.SolveCacheMisses = st.Hits, st.Misses
	return report, nil
}

// RunReductionBatch is RunReduction over a sweep of inputs in one
// lockstep batched pass: every instance is built through the Lab's build
// cache, then all simulations advance round-by-round together through
// core.SimulateBatch, sharing adjacency whenever builds dedup to the
// same graph. reports[i] is meaningful iff errs[i] is nil; an input
// whose build fails is skipped (its error recorded) without disturbing
// the rest of the sweep. BatchStats describes the engine pass: how many
// simulations entered it, how many shared a graph, and the lockstep
// round counts.
//
// Unlike RunReduction, the per-report SolveCacheHits/Misses stay zero:
// the batch interleaves every instance's solves through one lockstep
// pass, so the counters cannot be attributed to a single report. The
// traffic is still fully visible at *batch* granularity: diff
// SolveCacheStats across the call, or on a WithMetrics Lab diff
// Lab.Metrics — the solve_cache_hits/solve_cache_misses counter deltas
// over the call window are exactly this batch's lookups (plus, on the
// snapshot, solve latency and step histograms the legacy counters never
// had). Per-input attribution is the one thing the lockstep fusion
// gives up.
func (l *Lab) RunReductionBatch(ctx context.Context, fam Family, ins []Inputs, cfg CongestConfig) ([]SimulationReport, []error, BatchStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	reports := make([]SimulationReport, len(ins))
	errs := make([]error, len(ins))
	if err := ctx.Err(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return reports, errs, BatchStats{}
	}
	sess := l.solveSession(ctx)
	factory := core.GossipProgramsWith(sess)
	sims := make([]core.BatchSim, 0, len(ins))
	simIdx := make([]int, 0, len(ins)) // sims index -> ins index
	for i, in := range ins {
		inst, err := l.buildInstance(fam, in)
		if err != nil {
			errs[i] = fmt.Errorf("core: build: %w", err)
			continue
		}
		sims = append(sims, core.BatchSim{
			Fam: fam, In: in, Inst: inst,
			Factory: factory, Extract: core.GossipOpt, Cfg: cfg,
		})
		simIdx = append(simIdx, i)
	}
	batchReports, batchErrs, stats := core.SimulateBatch(ctx, sims)
	for j, i := range simIdx {
		reports[i] = batchReports[j]
		errs[i] = batchErrs[j]
	}
	return reports, errs, stats
}

// Simulate is RunReduction with a caller-chosen CONGEST algorithm and
// output interpretation. The instance is built through the Lab's build
// cache; whether the *solves* inside the node programs honour the Lab's
// isolation is up to the factory, since the Lab cannot reach inside it.
// Factories whose programs solve MaxIS must route those solves through a
// session from NewSolveSession, bound to ctx via SolveSession.WithContext
// (as core.GossipProgramsWith/CollectProgramsWith accept) — a session-less
// factory such as core.GossipPrograms falls back to the process-wide
// shared solve cache, outside this Lab's isolation and cancellation.
//
// The report's SolveCacheHits/Misses are zeroed on isolated Labs: the
// underlying machinery can only diff the process-wide shared cache, which
// this Lab does not use, so the numbers would describe other tenants'
// traffic. Callers wanting exact counts read Stats() on the session they
// handed the factory (RunReduction, which owns its session, reports them
// itself).
func (l *Lab) Simulate(ctx context.Context, fam Family, in Inputs, factory core.ProgramFactory, extract core.OptExtractor, cfg CongestConfig) (SimulationReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return SimulationReport{}, err
	}
	inst, err := l.buildInstance(fam, in)
	if err != nil {
		return SimulationReport{}, fmt.Errorf("core: build: %w", err)
	}
	report, err := core.SimulateBuiltCtx(ctx, fam, in, inst, factory, extract, cfg)
	if !l.def {
		report.SolveCacheHits, report.SolveCacheMisses = 0, 0
	}
	return report, err
}

// ExactMaxIS solves an instance exactly using its natural clique cover,
// through this Lab's solve cache. On cancellation the best incumbent found
// so far is returned together with ctx.Err() (Optimal false) — the same
// contract as a step-budget exhaustion.
func (l *Lab) ExactMaxIS(ctx context.Context, inst Instance) (Solution, error) {
	return l.solveSession(ctx).Exact(inst.Graph, SolverOptions{CliqueCover: inst.CliqueCover})
}

// WatchSolve is ExactMaxIS with a live progress stream: every incumbent
// improvement the exact solve finds is delivered to o as a
// strictly weight-increasing sequence (a monotonic guard serialises and
// filters the engines' raw events), followed by exactly one Final event
// carrying the returned solution's weight — even when the solve was
// answered from cache and no engine ever ran, and even when ctx
// cancellation cut the search short (the Final event then carries the
// best incumbent, mirroring the returned Solution). The Lab's
// WithObserver callback and metrics registry, if any, observe the same
// solve too. A nil o degenerates to ExactMaxIS.
func (l *Lab) WatchSolve(ctx context.Context, inst Instance, o ProgressObserver) (Solution, error) {
	if o == nil {
		return l.ExactMaxIS(ctx, inst)
	}
	guard := obs.NewMonotonic(o)
	sess := l.solveSession(ctx).WithProgress(obs.Tee(guard, l.progress))
	sol, err := sess.Exact(inst.Graph, SolverOptions{CliqueCover: inst.CliqueCover})
	guard.Finish(sol.Weight, sol.Steps)
	return sol, err
}

// ExactMaxISGraph solves an arbitrary graph exactly (greedy clique cover)
// through this Lab's solve cache, with the same cancellation contract as
// ExactMaxIS.
func (l *Lab) ExactMaxISGraph(ctx context.Context, g *Graph) (Solution, error) {
	return l.solveSession(ctx).Exact(g, SolverOptions{})
}

// VerifyGap builds the instance for in through the Lab's build cache,
// solves it exactly through the Lab's solve cache, and checks the correct
// side of the family's gap predicate, returning the optimum. Only the
// value is consumed, so the solve is flagged WeightOnly.
func (l *Lab) VerifyGap(ctx context.Context, fam Family, in Inputs) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	inst, err := l.buildInstance(fam, in)
	if err != nil {
		return 0, err
	}
	sess := l.solveSession(ctx)
	return core.AuditGapBuilt(fam, in, inst, func(inst Instance) (int64, error) {
		sol, err := sess.Exact(inst.Graph, SolverOptions{CliqueCover: inst.CliqueCover, WeightOnly: true})
		if err != nil {
			return 0, err
		}
		return sol.Weight, nil
	})
}

// SplitBest runs the Section 1 limitation protocol through this Lab's
// solve cache: every player solves its own part locally and announces one
// value, achieving a 1/t-approximation for t·O(log n) bits.
func (l *Lab) SplitBest(ctx context.Context, inst Instance) (SplitBestReport, error) {
	return core.SplitBestWith(l.solveSession(ctx), inst)
}

// beginRun registers an in-flight RunExperiments call and returns the
// Lab's lazily-created pool plus the run's build-cache configuration,
// holding the Lab open against Close until endRun. The refcount is what
// makes Close safe to race with RunExperiments: Close drains the pool
// only after every registered run has finished, so a run can never
// submit onto a pool whose workers already exited (which would block
// its flush loop forever).
func (l *Lab) beginRun() (sched *experiments.Scheduler, builds *lbgraph.BuildCache, uncached bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, false, ErrClosed
	}
	if l.sched == nil {
		jobs := l.jobs
		if jobs < 1 {
			jobs = runtime.GOMAXPROCS(0)
		}
		l.sched = experiments.NewScheduler(jobs)
		if l.reg != nil {
			l.sched.SetRegistry(l.reg)
		}
	}
	l.active++
	return l.sched, l.builds, l.buildCacheOff, nil
}

// endRun releases a beginRun registration.
func (l *Lab) endRun() {
	l.mu.Lock()
	l.active--
	if l.active == 0 && l.idle != nil {
		l.idle.Broadcast()
	}
	l.mu.Unlock()
}

// RunExperiments executes the selected registered experiments (empty ids =
// all of them, in ID order) over this Lab's worker pool, caches and solver
// default, streaming the combined markdown report to w (nil discards) and
// returning the structured result envelope. Cancellation drains queued
// experiments and instance jobs as cancelled, stops in-flight simulations
// and solves cooperatively, and still returns a complete envelope — every
// unfinished experiment is recorded with cancelled: true.
func (l *Lab) RunExperiments(ctx context.Context, ids []string, w io.Writer) (ExperimentEnvelope, error) {
	exps, err := experiments.Select(ids)
	if err != nil {
		return ExperimentEnvelope{}, err
	}
	sched, builds, uncached, err := l.beginRun()
	if err != nil {
		return ExperimentEnvelope{}, err
	}
	defer l.endRun()
	return runner.RunCtx(ctx, exps, runner.Options{
		SolverWorkers:  l.sessionWorkers(),
		SolveCache:     l.solve,
		BuildCache:     builds,
		UncachedBuilds: uncached,
		Scheduler:      sched,
		Obs:            l.reg,
	}, w)
}

// LoadStats is a point-in-time picture of how busy a Lab is — the
// introspection hook admission control (congestlbd) keys its decisions
// on. All fields are instantaneous; poll for trends.
type LoadStats struct {
	// QueueDepth is the number of scheduler jobs waiting for a worker
	// (0 when the Lab's experiment pool has not been created yet).
	QueueDepth int `json:"queue_depth"`
	// PoolWorkers is the experiment worker-pool size (0 until the pool
	// is lazily created by the first RunExperiments).
	PoolWorkers int `json:"pool_workers"`
	// ActiveRuns is the number of RunExperiments calls in flight.
	ActiveRuns int `json:"active_runs"`
	// SolverWorkers is the Lab's branch-and-bound worker default
	// (0 = GOMAXPROCS at solve time).
	SolverWorkers int `json:"solver_workers"`
	// Closed reports that the Lab has been (or is being) closed.
	Closed bool `json:"closed,omitempty"`
}

// Load reports the Lab's current scheduler queue depth and in-flight
// run count. It is cheap and safe to call at any time, including
// concurrently with Close (a closed Lab reports Closed with zero depth).
func (l *Lab) Load() LoadStats {
	l.mu.Lock()
	ls := LoadStats{
		ActiveRuns:    l.active,
		SolverWorkers: l.workers,
		Closed:        l.closed,
	}
	sched := l.sched
	l.mu.Unlock()
	if l.def {
		ls.SolverWorkers = mis.DefaultWorkers()
	}
	if sched != nil {
		ls.QueueDepth = sched.QueueDepth()
		ls.PoolWorkers = sched.Workers()
	}
	return ls
}

// Close releases the Lab's worker pool and detaches its solve cache's disk
// tier. The first Close owns the teardown; every later (or concurrently
// racing) Close blocks until that teardown finishes, then returns
// ErrClosed — so any Close returning means the pool is drained and the
// disk tier detached, and the error tells the caller it was not the one
// that did it. The default Lab must not be closed. In-flight
// RunExperiments calls finish first (Scheduler.Close drains); pure
// solve/simulate methods keep working on a closed Lab. See docs/api.md
// for the full post-Close contract.
func (l *Lab) Close() error {
	if l.def {
		return errors.New("congestlb: the default Lab cannot be closed")
	}
	l.mu.Lock()
	if l.closeDone != nil {
		// Another Close owns the teardown. Block until it completes, then
		// report ErrClosed: the Lab was already closed (or closing) when
		// this call arrived, but it is still safe to tear down external
		// state (e.g. delete the cache directory) once we return.
		done := l.closeDone
		l.mu.Unlock()
		<-done
		return ErrClosed
	}
	l.closed = true
	l.closeDone = make(chan struct{})
	defer close(l.closeDone)
	// Wait out in-flight RunExperiments calls before stopping the pool:
	// closing a scheduler whose runs are still submitting would leave
	// their jobs unclaimed (the workers exit once the queue drains) and
	// their flush loops blocked forever. New runs are already rejected by
	// the closed flag above.
	for l.active > 0 {
		if l.idle == nil {
			l.idle = sync.NewCond(&l.mu)
		}
		l.idle.Wait()
	}
	sched := l.sched
	l.sched = nil
	l.mu.Unlock()
	if sched != nil {
		sched.Close()
	}
	if l.solve != nil {
		return l.solve.SetDir("", 0)
	}
	return nil
}
