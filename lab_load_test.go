package congestlb_test

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"congestlb"
	"congestlb/internal/graphs"
)

// loadTestGraph builds a random weighted graph heavy enough to count
// solver steps but quick to solve.
func loadTestGraph(seed int64) *congestlb.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graphs.NewWithN(30)
	for v := 0; v < 30; v++ {
		g.AddNodeID(1 + rng.Int63n(6))
	}
	for u := 0; u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			if rng.Float64() < 0.3 {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

func TestSharedSolveTierAcrossLabs(t *testing.T) {
	tier := congestlb.NewSharedSolveTier(16)
	cold, err := congestlb.New(congestlb.WithSharedSolveTier(tier))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	warm, err := congestlb.New(congestlb.WithSharedSolveTier(tier))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()

	g := loadTestGraph(21)
	ctx := context.Background()
	first, err := cold.ExactMaxISGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	second, err := warm.ExactMaxISGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if first.Weight != second.Weight {
		t.Fatalf("tier-served weight %d, want %d", second.Weight, first.Weight)
	}
	cs, ws := cold.SolveCacheStats(), warm.SolveCacheStats()
	if cs.Misses != 1 || cs.SharedHits != 0 {
		t.Fatalf("cold Lab stats: %+v", cs)
	}
	if ws.Misses != 0 || ws.SharedHits != 1 || ws.StepsSolved != 0 {
		t.Fatalf("warm Lab stats: %+v", ws)
	}
	if ts := tier.Stats(); ts.Entries != 1 || ts.Hits != 1 {
		t.Fatalf("tier stats: %+v", ts)
	}
}

func TestLabLoad(t *testing.T) {
	lab, err := congestlb.New(congestlb.WithJobs(2), congestlb.WithSolverWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	ls := lab.Load()
	if ls.QueueDepth != 0 || ls.PoolWorkers != 0 || ls.ActiveRuns != 0 || ls.Closed {
		t.Fatalf("fresh Lab load: %+v", ls)
	}
	if ls.SolverWorkers != 3 {
		t.Fatalf("SolverWorkers = %d, want 3", ls.SolverWorkers)
	}
	if _, err := lab.RunExperiments(context.Background(), []string{"lemma1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	ls = lab.Load()
	if ls.PoolWorkers != 2 {
		t.Fatalf("PoolWorkers after run = %d, want 2", ls.PoolWorkers)
	}
	if ls.ActiveRuns != 0 || ls.QueueDepth != 0 {
		t.Fatalf("idle Lab load after run: %+v", ls)
	}
	if err := lab.Close(); err != nil {
		t.Fatal(err)
	}
	if ls = lab.Load(); !ls.Closed || ls.QueueDepth != 0 {
		t.Fatalf("closed Lab load: %+v", ls)
	}
}
