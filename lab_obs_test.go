package congestlb_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"congestlb"
)

// eventLog is a concurrency-safe ProgressObserver recording every event.
type eventLog struct {
	mu     sync.Mutex
	events []congestlb.ProgressEvent
	// onEvent, when set, runs under the lock for each event (used to
	// cancel a solve from inside its own progress stream).
	onEvent func(congestlb.ProgressEvent)
}

func (l *eventLog) OnIncumbent(ev congestlb.ProgressEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
	if l.onEvent != nil {
		l.onEvent(ev)
	}
}

func (l *eventLog) snapshot() []congestlb.ProgressEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]congestlb.ProgressEvent(nil), l.events...)
}

// requireWatchStream asserts the WatchSolve contract on a recorded
// stream: strictly increasing weights, exactly one Final event, at the
// end, carrying the returned solution's weight.
func requireWatchStream(t *testing.T, events []congestlb.ProgressEvent, finalWeight int64) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("watch stream empty — no Final event delivered")
	}
	for i, ev := range events {
		if ev.Final != (i == len(events)-1) {
			t.Fatalf("event %d/%d: Final = %v", i, len(events), ev.Final)
		}
	}
	for i := 1; i < len(events)-1; i++ {
		if events[i].Weight <= events[i-1].Weight {
			t.Fatalf("weights not strictly increasing: event %d %d after %d",
				i, events[i].Weight, events[i-1].Weight)
		}
	}
	last := events[len(events)-1]
	if last.Weight != finalWeight {
		t.Fatalf("Final event weight %d, solution weight %d", last.Weight, finalWeight)
	}
}

// TestLabWatchSolve: a watched solve streams strictly weight-increasing
// incumbents and terminates with exactly one Final event carrying the
// returned weight; a rewatch of the now-cached instance delivers the
// Final event alone.
func TestLabWatchSolve(t *testing.T) {
	_, inst := buildTestInstance(t, 71)
	lab := newTestLab(t, congestlb.WithMetrics(true))

	var log eventLog
	sol, err := lab.WatchSolve(context.Background(), inst, &log)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Fatal("uncancelled watched solve not optimal")
	}
	requireWatchStream(t, log.snapshot(), sol.Weight)

	// Cached rewatch: no engine runs, so the stream is the termination
	// marker alone — still exactly one Final, still the right weight.
	var rewatch eventLog
	sol2, err := lab.WatchSolve(context.Background(), inst, &rewatch)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Weight != sol.Weight {
		t.Fatalf("cached rewatch weight %d, want %d", sol2.Weight, sol.Weight)
	}
	events := rewatch.snapshot()
	if len(events) != 1 || !events[0].Final {
		t.Fatalf("cached rewatch stream = %+v, want the Final event alone", events)
	}
	requireWatchStream(t, events, sol.Weight)

	// The registry observed the incumbents too (WatchSolve tees, never
	// replaces, the Lab's own observability).
	if lab.Metrics().Counter("solver_incumbent_updates") == 0 {
		t.Fatal("watched solve booked no incumbents in the Lab registry")
	}
}

// TestLabWatchSolveCancelled is the acceptance criterion for the
// progress API: cancelling a large solve mid-search still yields a
// strictly weight-increasing stream, closed by exactly one Final event
// that carries the returned incumbent's weight.
func TestLabWatchSolveCancelled(t *testing.T) {
	p := congestlb.Params{T: 3, Alpha: 2, Ell: 5}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	lab := newTestLab(t)
	inst, err := lab.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	log := eventLog{onEvent: func(ev congestlb.ProgressEvent) {
		// Cancel from inside the stream, on the first improvement: the
		// solver keeps searching until a step-batch boundary notices the
		// dead context, typically emitting further improvements — all of
		// which must still arrive strictly increasing.
		if !ev.Final {
			cancel()
		}
	}}
	sol, err := lab.WatchSolve(ctx, inst, &log)
	// Whether cancellation won the race or the solve finished first, the
	// stream contract must hold; on the cancelled path the incumbent is
	// returned alongside ctx.Err() and the Final event mirrors it.
	if err == nil && !sol.Optimal {
		t.Fatal("nil error but non-optimal solution")
	}
	if sol.Weight <= 0 {
		t.Fatalf("watched solve lost the incumbent: weight %d", sol.Weight)
	}
	requireWatchStream(t, log.snapshot(), sol.Weight)
}

// TestLabWithObserver: the construction-time observer sees every exact
// solve the Lab runs, without WithMetrics.
func TestLabWithObserver(t *testing.T) {
	_, inst := buildTestInstance(t, 79)
	var log eventLog
	lab := newTestLab(t, congestlb.WithObserver(&log))
	sol, err := lab.ExactMaxIS(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	events := log.snapshot()
	if len(events) == 0 {
		t.Fatal("observer saw no incumbents")
	}
	best := events[0].Weight
	for _, ev := range events[1:] {
		if ev.Weight <= best {
			t.Fatalf("observer weights not strictly increasing: %+v", events)
		}
		best = ev.Weight
	}
	if best != sol.Weight {
		t.Fatalf("last observed incumbent %d, solution %d", best, sol.Weight)
	}
}

// TestLabMetricsHandler drives the ops endpoint end to end: Prometheus
// text, JSON snapshot and span export all serve, and a metrics-less Lab
// returns no handler at all.
func TestLabMetricsHandler(t *testing.T) {
	_, inst := buildTestInstance(t, 83)
	lab := newTestLab(t, congestlb.WithMetrics(true))
	if _, err := lab.ExactMaxIS(context.Background(), inst); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(lab.MetricsHandler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	prom := get("/metrics")
	if !strings.Contains(prom, "congestlb_solve_cache_misses_total") {
		t.Fatalf("/metrics misses the solve counters:\n%s", prom)
	}
	if !strings.Contains(get("/metrics.json"), `"solve_cache_misses"`) {
		t.Fatal("/metrics.json misses the solve counters")
	}
	if !strings.Contains(get("/spans.json"), `"solve"`) {
		t.Fatal("/spans.json misses the solve span")
	}

	if h := newTestLab(t).MetricsHandler(); h != nil {
		t.Fatal("metrics-less Lab returned an ops handler")
	}
}

// TestLabMetricsOffIsEmpty: without WithMetrics every surface is inert —
// empty snapshots, no spans, nil handler — while the Lab works normally.
func TestLabMetricsOffIsEmpty(t *testing.T) {
	_, inst := buildTestInstance(t, 89)
	lab := newTestLab(t)
	if _, err := lab.ExactMaxIS(context.Background(), inst); err != nil {
		t.Fatal(err)
	}
	snap := lab.Metrics()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("metrics-less Lab recorded %+v", snap)
	}
	if st := lab.SpanStats(); st != nil {
		t.Fatalf("metrics-less Lab recorded spans: %+v", st)
	}
}
