package congestlb_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"congestlb"
)

// buildTestInstance constructs a small solvable lower-bound instance.
func buildTestInstance(t *testing.T, seed int64) (congestlb.Family, congestlb.Instance) {
	t.Helper()
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}
	return fam, inst
}

// TestLabMemoryCacheIsolation: a solve cached in one Lab is a cold miss in
// another — Labs share no in-memory cache state.
func TestLabMemoryCacheIsolation(t *testing.T) {
	_, inst := buildTestInstance(t, 41)
	ctx := context.Background()
	lab1 := newTestLab(t)
	lab2 := newTestLab(t)

	if _, err := lab1.ExactMaxIS(ctx, inst); err != nil {
		t.Fatal(err)
	}
	if _, err := lab1.ExactMaxIS(ctx, inst); err != nil {
		t.Fatal(err)
	}
	st1 := lab1.SolveCacheStats()
	if st1.Misses != 1 || st1.Hits != 1 {
		t.Fatalf("lab1 stats %+v, want 1 miss + 1 hit", st1)
	}
	if _, err := lab2.ExactMaxIS(ctx, inst); err != nil {
		t.Fatal(err)
	}
	st2 := lab2.SolveCacheStats()
	if st2.Misses != 1 || st2.Hits != 0 {
		t.Fatalf("lab2 observed lab1's cache: %+v", st2)
	}
	if st2.StepsSolved == 0 {
		t.Fatal("lab2 did no solver work of its own")
	}
}

// TestLabCacheDirsNeverCrossPopulate is the config-smearing regression
// test: two Labs with different solve-cache directories persist and serve
// strictly within their own directory. Before the Lab API, re-pointing the
// process-wide SetSolveCacheDir mid-run could smear one workload's entries
// into another's directory; per-Lab tiers close that hazard by
// construction, and this pins it.
func TestLabCacheDirsNeverCrossPopulate(t *testing.T) {
	_, inst := buildTestInstance(t, 43)
	ctx := context.Background()
	dir1 := filepath.Join(t.TempDir(), "tier1")
	dir2 := filepath.Join(t.TempDir(), "tier2")

	lab1 := newTestLab(t, congestlb.WithSolveCacheDir(dir1))
	if _, err := lab1.ExactMaxIS(ctx, inst); err != nil {
		t.Fatal(err)
	}
	st1 := lab1.SolveCacheStats()
	if st1.DiskWrites == 0 {
		t.Fatalf("lab1 persisted nothing: %+v", st1)
	}

	// Same graph through a Lab with a different directory: it must neither
	// see lab1's entry (disk miss, fresh solve) nor write into lab1's dir.
	entries1 := dirEntries(t, dir1)
	lab2 := newTestLab(t, congestlb.WithSolveCacheDir(dir2))
	if _, err := lab2.ExactMaxIS(ctx, inst); err != nil {
		t.Fatal(err)
	}
	st2 := lab2.SolveCacheStats()
	if st2.DiskHits != 0 {
		t.Fatalf("lab2 served lab1's disk entry: %+v", st2)
	}
	if st2.DiskMisses == 0 || st2.DiskWrites == 0 || st2.StepsSolved == 0 {
		t.Fatalf("lab2 did not run its own cold solve: %+v", st2)
	}
	if got := dirEntries(t, dir1); got != entries1 {
		t.Fatalf("lab2 wrote into lab1's directory: %d -> %d entries", entries1, got)
	}
	if dirEntries(t, dir2) == 0 {
		t.Fatal("lab2's directory empty after a persisted solve")
	}

	// And the tier itself works: a third Lab pointed at dir1 gets the hit,
	// proving lab2's zero disk hits measured isolation, not a dead tier.
	lab3 := newTestLab(t, congestlb.WithSolveCacheDir(dir1))
	if _, err := lab3.ExactMaxIS(ctx, inst); err != nil {
		t.Fatal(err)
	}
	if st3 := lab3.SolveCacheStats(); st3.DiskHits == 0 {
		t.Fatalf("lab3 could not read lab1's tier: %+v", st3)
	}
}

func dirEntries(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(des)
}

// labSuiteIDs is the experiment subset the concurrency tests run: distinct
// workloads (simulation sweeps, exact solves, builds) without the heavy
// full-reduction pair, so -race stays affordable. Out of -short mode the
// acceptance test below upgrades to the full registry.
var labSuiteIDs = []string{"figure1", "codes", "cutsize", "solver", "twoparty"}

// TestTwoLabsConcurrentSuite is the PR's acceptance criterion: two Labs
// with different solver-worker counts and different cache directories run
// the experiment suite concurrently (race-tested in CI), each envelope's
// per-experiment cache numbers summing exactly to its own run-level delta
// — non-overlapping attribution, no cross-Lab leakage.
func TestTwoLabsConcurrentSuite(t *testing.T) {
	ids := labSuiteIDs
	if !testing.Short() {
		ids = nil // the full registry
	}
	type labRun struct {
		lab *congestlb.Lab
		env congestlb.ExperimentEnvelope
		buf bytes.Buffer
		err error
	}
	runs := []*labRun{
		{lab: newTestLab(t, congestlb.WithSolverWorkers(1), congestlb.WithJobs(4), congestlb.WithMetrics(true),
			congestlb.WithSolveCacheDir(filepath.Join(t.TempDir(), "a")))},
		{lab: newTestLab(t, congestlb.WithSolverWorkers(2), congestlb.WithJobs(4), congestlb.WithMetrics(true),
			congestlb.WithSolveCacheDir(filepath.Join(t.TempDir(), "b")))},
	}
	var wg sync.WaitGroup
	for _, r := range runs {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.env, r.err = r.lab.RunExperiments(context.Background(), ids, &r.buf)
		}()
	}
	wg.Wait()

	wantWorkers := []int{1, 2}
	for i, r := range runs {
		if r.err != nil {
			t.Fatalf("lab %d: %v", i, r.err)
		}
		if r.env.Failed != 0 || r.env.OK == 0 {
			t.Fatalf("lab %d envelope: %+v", i, r.env)
		}
		if r.env.SolverWorkers != wantWorkers[i] {
			t.Fatalf("lab %d solver workers %d, want %d", i, r.env.SolverWorkers, wantWorkers[i])
		}
		if r.buf.Len() == 0 {
			t.Fatalf("lab %d produced no report", i)
		}
		// Exact attribution: the experiments' session counters must sum to
		// the run-level delta of this Lab's own cache. Any cross-Lab
		// leakage would break the equality on one side or the other —
		// traffic booked in the wrong Lab's cache inflates its delta
		// without a matching per-experiment record.
		var hits, misses uint64
		var solved, saved int64
		var bHits, bMisses uint64
		for _, er := range r.env.Experiments {
			hits += er.CacheHits
			misses += er.CacheMisses
			solved += er.SolveSteps
			saved += er.StepsSaved
			bHits += er.LBGraphHits
			bMisses += er.LBGraphMisses
		}
		if hits != r.env.Cache.Hits || misses != r.env.Cache.Misses {
			t.Fatalf("lab %d solve-cache attribution drifted: sum %d/%d, delta %d/%d",
				i, hits, misses, r.env.Cache.Hits, r.env.Cache.Misses)
		}
		if solved != r.env.Cache.StepsSolved || saved != r.env.Cache.StepsSaved {
			t.Fatalf("lab %d step attribution drifted: sum %d/%d, delta %d/%d",
				i, solved, saved, r.env.Cache.StepsSolved, r.env.Cache.StepsSaved)
		}
		if bHits != r.env.LBGraph.Hits || bMisses != r.env.LBGraph.Misses {
			t.Fatalf("lab %d build-cache attribution drifted: sum %d/%d, delta %d/%d",
				i, bHits, bMisses, r.env.LBGraph.Hits, r.env.LBGraph.Misses)
		}
		if misses == 0 || solved == 0 {
			t.Fatalf("lab %d saw no cold solver work on a fresh cache: %+v", i, r.env.Cache)
		}
		// Per-Lab metrics never cross-contaminate: each registry is fresh
		// and ran exactly one suite, so its lifetime counters must equal
		// its own envelope's run delta. Traffic leaking from the
		// concurrently running other Lab would inflate the registry side
		// of the equality.
		snap := r.lab.Metrics()
		if got, want := snap.Counter("solve_cache_hits"), int64(r.env.Cache.Hits); got != want {
			t.Fatalf("lab %d registry solve hits %d, envelope %d", i, got, want)
		}
		if got, want := snap.Counter("solve_cache_misses"), int64(r.env.Cache.Misses); got != want {
			t.Fatalf("lab %d registry solve misses %d, envelope %d", i, got, want)
		}
		if got, want := snap.Counter("build_cache_hits"), int64(r.env.LBGraph.Hits); got != want {
			t.Fatalf("lab %d registry build hits %d, envelope %d", i, got, want)
		}
		if got, want := snap.Counter("build_cache_misses"), int64(r.env.LBGraph.Misses); got != want {
			t.Fatalf("lab %d registry build misses %d, envelope %d", i, got, want)
		}
		if r.env.Metrics == nil || len(r.env.Spans) == 0 {
			t.Fatalf("lab %d envelope missing observability blocks", i)
		}
	}
	// Both Labs solved the same suite cold: had they shared a cache, one
	// side's solves would have surfaced as the other's hits/steps-saved.
	if runs[0].env.Cache.StepsSolved == 0 || runs[1].env.Cache.StepsSolved == 0 {
		t.Fatal("one Lab rode the other's cache — isolation broken")
	}
}

// TestOneLabConcurrentRunsExactAttribution: two overlapping
// RunExperiments calls on the SAME Lab (sharing its caches and pool) must
// each produce an envelope whose run-level traffic equals its own
// per-experiment sums — run-level numbers are summed from the runs' own
// sessions, never diffed across a window the other run was also writing.
func TestOneLabConcurrentRunsExactAttribution(t *testing.T) {
	lab := newTestLab(t, congestlb.WithJobs(4))
	type out struct {
		env congestlb.ExperimentEnvelope
		err error
	}
	outs := make([]out, 2)
	var wg sync.WaitGroup
	for i := range outs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i].env, outs[i].err = lab.RunExperiments(context.Background(), labSuiteIDs, nil)
		}()
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("run %d: %v", i, o.err)
		}
		var hits, misses uint64
		var solved, saved int64
		for _, r := range o.env.Experiments {
			hits += r.CacheHits
			misses += r.CacheMisses
			solved += r.SolveSteps
			saved += r.StepsSaved
		}
		if hits != o.env.Cache.Hits || misses != o.env.Cache.Misses ||
			solved != o.env.Cache.StepsSolved || saved != o.env.Cache.StepsSaved {
			t.Fatalf("run %d: run-level traffic (%d/%d, %d/%d) != per-experiment sums (%d/%d, %d/%d)",
				i, o.env.Cache.Hits, o.env.Cache.Misses, o.env.Cache.StepsSolved, o.env.Cache.StepsSaved,
				hits, misses, solved, saved)
		}
	}
}

// TestLabRepeatRunByteIdentical: the golden-report property through the
// facade — one Lab, same suite twice (cold then fully cached), identical
// markdown bytes. Cached solves return the original Solution verbatim, so
// warmth is unobservable in the report.
func TestLabRepeatRunByteIdentical(t *testing.T) {
	lab := newTestLab(t, congestlb.WithJobs(4))
	var first, second bytes.Buffer
	if _, err := lab.RunExperiments(context.Background(), labSuiteIDs, &first); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.RunExperiments(context.Background(), labSuiteIDs, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("warm rerun through the same Lab changed the report")
	}
}

// TestLabExactMaxISCancelled pins the facade-level cancellation contract:
// a dead context still returns the incumbent witness with ctx.Err().
func TestLabExactMaxISCancelled(t *testing.T) {
	_, inst := buildTestInstance(t, 47)
	lab := newTestLab(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := lab.ExactMaxIS(ctx, inst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol.Optimal {
		t.Fatal("cancelled solve claims optimality")
	}
	if len(sol.Set) == 0 {
		t.Fatal("cancelled solve lost the incumbent")
	}
	if _, verr := congestlb.VerifyIndependent(inst.Graph, sol.Set); verr != nil {
		t.Fatalf("incumbent not independent: %v", verr)
	}
}

// TestLabRunReductionCancelled: a dead context stops the simulation before
// any round runs.
func TestLabRunReductionCancelled(t *testing.T) {
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	lab := newTestLab(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lab.RunReduction(ctx, fam, in, congestlb.CongestConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLabCloseSemantics: Close is idempotent (a second Close is safe and
// reports ErrClosed instead of panicking), rejects further experiment
// runs, keeps pure solves working, and the default Lab refuses to close.
func TestLabCloseSemantics(t *testing.T) {
	_, inst := buildTestInstance(t, 59)
	lab, err := congestlb.New(congestlb.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.RunExperiments(context.Background(), []string{"codes"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := lab.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close is safe but reports that the Lab was already closed.
	if err := lab.Close(); !errors.Is(err, congestlb.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := lab.RunExperiments(context.Background(), []string{"codes"}, nil); !errors.Is(err, congestlb.ErrClosed) {
		t.Fatalf("closed Lab RunExperiments = %v, want ErrClosed", err)
	}
	if _, err := lab.ExactMaxIS(context.Background(), inst); err != nil {
		t.Fatalf("closed Lab lost pure solving: %v", err)
	}
	if err := congestlb.DefaultLab().Close(); err == nil {
		t.Fatal("default Lab allowed Close")
	}
}

// TestLabCloseConcurrent: many goroutines racing Close on one Lab —
// exactly one wins the teardown (nil), every loser blocks until the
// teardown is complete and reports ErrClosed. Run with -race this also
// proves the teardown itself is not entered twice.
func TestLabCloseConcurrent(t *testing.T) {
	lab, err := congestlb.New(congestlb.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.RunExperiments(context.Background(), []string{"codes"}, nil); err != nil {
		t.Fatal(err)
	}
	const closers = 8
	errs := make(chan error, closers)
	for i := 0; i < closers; i++ {
		go func() { errs <- lab.Close() }()
	}
	var nils, closed int
	for i := 0; i < closers; i++ {
		switch err := <-errs; {
		case err == nil:
			nils++
		case errors.Is(err, congestlb.ErrClosed):
			closed++
		default:
			t.Fatalf("unexpected Close error: %v", err)
		}
	}
	if nils != 1 || closed != closers-1 {
		t.Fatalf("%d nil / %d ErrClosed, want exactly 1 / %d", nils, closed, closers-1)
	}
}

// TestLabCloseWaitsForInFlightRun: Close racing RunExperiments must wait
// for the run instead of pulling the scheduler out from under it (which
// would strand the runner's flush loop forever).
func TestLabCloseWaitsForInFlightRun(t *testing.T) {
	lab, err := congestlb.New(congestlb.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := lab.RunExperiments(context.Background(), labSuiteIDs, nil)
		runDone <- err
	}()
	// Close concurrently with the run: it must block until the run
	// finishes, then succeed; the run itself must complete normally.
	closeDone := make(chan error, 1)
	go func() { closeDone <- lab.Close() }()
	if err := <-runDone; err != nil {
		// The run may also be rejected outright if Close won the race to
		// the closed flag before the run registered — that is the other
		// legal outcome, never a hang.
		if err.Error() != "congestlb: Lab is closed" {
			t.Fatalf("in-flight run failed: %v", err)
		}
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestLabSolverWorkersOption pins the option plumbing end to end: the
// Lab's worker default reaches the envelope and the setter round-trips.
func TestLabSolverWorkersOption(t *testing.T) {
	lab := newTestLab(t, congestlb.WithSolverWorkers(3))
	if got := lab.SolverWorkers(); got != 3 {
		t.Fatalf("SolverWorkers = %d, want 3", got)
	}
	if prev := lab.SetSolverWorkers(2); prev != 3 {
		t.Fatalf("SetSolverWorkers returned %d, want previous 3", prev)
	}
	env, err := lab.RunExperiments(context.Background(), []string{"codes"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.SolverWorkers != 2 {
		t.Fatalf("envelope solver workers %d, want 2", env.SolverWorkers)
	}
	// Isolation: configuring this Lab never touched the process-wide
	// default the old globals govern.
	if got := congestlb.DefaultLab().SolverWorkers(); got == 2 || got == 3 {
		t.Fatalf("default Lab observed an isolated Lab's worker setting: %d", got)
	}
}

// TestLabBuildInstanceUsesLabCache: explicit builds through the handle
// land in the Lab's own build cache, not the shared one.
func TestLabBuildInstanceUsesLabCache(t *testing.T) {
	fam, _ := buildTestInstance(t, 67)
	lab := newTestLab(t)
	rng := rand.New(rand.NewSource(67))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), 2, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.BuildInstance(fam, in); err != nil {
		t.Fatal(err)
	}
	if st := lab.BuildCacheStats(); st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("Lab build cache missed the explicit build: %+v", st)
	}
	if _, err := lab.BuildInstance(fam, in); err != nil {
		t.Fatal(err)
	}
	if st := lab.BuildCacheStats(); st.Hits != 1 {
		t.Fatalf("repeat build not served from the Lab cache: %+v", st)
	}
}

// TestLabBuildCacheToggle pins WithBuildCache(false): constructions still
// work, attribution records pure misses, and the per-Lab switch leaves the
// shared build cache alone.
func TestLabBuildCacheToggle(t *testing.T) {
	fam, _ := buildTestInstance(t, 61)
	lab := newTestLab(t, congestlb.WithBuildCache(false))
	rng := rand.New(rand.NewSource(61))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), 2, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.VerifyGap(context.Background(), fam, in); err != nil {
		t.Fatal(err)
	}
	if st := lab.BuildCacheStats(); st.Entries != 0 {
		t.Fatalf("uncached Lab retained build entries: %+v", st)
	}
	if prev := lab.SetBuildCacheEnabled(true); prev != false {
		t.Fatalf("SetBuildCacheEnabled returned %v, want false", prev)
	}
	if _, err := lab.VerifyGap(context.Background(), fam, in); err != nil {
		t.Fatal(err)
	}
	if st := lab.BuildCacheStats(); st.Entries == 0 {
		t.Fatalf("re-enabled build cache cached nothing: %+v", st)
	}
}

// TestLabRunReductionBatchMatchesSolo: RunReductionBatch over a sweep of
// inputs reproduces per-input RunReduction field for field — modulo the
// documented per-report solve-cache counters, which the batch leaves
// zero because lockstep interleaving makes them unattributable. The
// traffic must still book against the Lab as a whole.
func TestLabRunReductionBatchMatchesSolo(t *testing.T) {
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	ins := make([]congestlb.Inputs, 3)
	for i := range ins {
		in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
		if err != nil {
			t.Fatal(err)
		}
		ins[i] = in
	}
	// A repeated input: same build, so its report must be byte-identical
	// to the first occurrence's.
	ins = append(ins, ins[0])
	cfg := congestlb.CongestConfig{Seed: 7}

	soloLab := newTestLab(t)
	want := make([]congestlb.SimulationReport, len(ins))
	for i, in := range ins {
		r, err := soloLab.RunReduction(context.Background(), fam, in, cfg)
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		r.SolveCacheHits, r.SolveCacheMisses = 0, 0
		want[i] = r
	}

	batchLab := newTestLab(t)
	got, errs, stats := batchLab.RunReductionBatch(context.Background(), fam, ins, cfg)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch item %d: %v", i, err)
		}
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("report %d diverged:\n batch %+v\n solo  %+v", i, got[i], want[i])
		}
	}
	if stats.Instances != len(ins) {
		t.Errorf("stats.Instances = %d, want %d", stats.Instances, len(ins))
	}
	// The Lab's build cache hands every caller a private deep copy, so
	// even the repeated input does not share adjacency inside the batch.
	if stats.SharedGraphs != 0 {
		t.Errorf("stats.SharedGraphs = %d, want 0 (build cache deep-copies)", stats.SharedGraphs)
	}
	if stats.EngineRounds == 0 || stats.TotalRounds < int64(stats.EngineRounds) {
		t.Errorf("implausible round stats %+v", stats)
	}
	if st := batchLab.SolveCacheStats(); st.Hits+st.Misses == 0 {
		t.Error("batch solves did not book against the Lab's solve cache")
	}
}

// TestLabRunReductionBatchCancelled: a dead context fails every input
// without building anything.
func TestLabRunReductionBatchCancelled(t *testing.T) {
	fam, _ := buildTestInstance(t, 67)
	rng := rand.New(rand.NewSource(67))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), 2, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	lab := newTestLab(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs, stats := lab.RunReductionBatch(ctx, fam, []congestlb.Inputs{in, in}, congestlb.CongestConfig{})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
	if stats.Instances != 0 {
		t.Fatalf("cancelled batch reported %d instances", stats.Instances)
	}
}
